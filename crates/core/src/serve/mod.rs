//! `sp2 serve` — the long-running campaign service.
//!
//! The paper's RS2HPM was a monitoring *system*: nine months of
//! continuous collection over 144 nodes, not a one-shot analysis run.
//! This module is that shape for the reproduction — a daemon that
//! accepts campaign submissions over a plain TCP socket, multiplexes
//! many campaigns concurrently over the process-wide worker pool,
//! streams results incrementally as NDJSON, and keeps every completed
//! result in a digest-keyed on-disk [`store::Store`].
//!
//! ## Protocol (`sp2-serve/v1`)
//!
//! Line-delimited JSON both ways; one request per line, parsed with
//! [`Json::parse`], rendered with the compact writer. Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"submit","submission":{…sp2-submission/v1…},"wait":bool}
//! {"op":"status","job":"<digest prefix>","live":bool}
//! {"op":"list"}
//! {"op":"fetch","job":"<digest prefix>"}
//! {"op":"cancel","job":"<digest prefix>"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response line carries `"ok"`. Failures answer
//! `{"ok":false,"code":…,"error":…}` where `code` is `validation` (the
//! submission failed [`Submission`] validation) or `protocol`
//! (malformed request, unknown/ambiguous job). A waiting `submit` and a
//! `fetch` answer with an event stream instead of a single line:
//!
//! ```text
//! {"ok":true,"event":"job","job":h,"state":s,"dedup":b,"stored":b}
//! {"event":"dataset","job":h,"seq":0,"experiment":id,"doc":{…}}
//! …
//! {"event":"done","job":h,"state":"done","datasets":n}
//! ```
//!
//! with `{"event":"error","job":h,"state":"failed"|"cancelled",…}`
//! terminating failed or cancelled jobs, and — when the daemon runs
//! with instrumentation on — trailing `{"event":"metrics",…}` /
//! `{"event":"timeline",…}` lines carrying the live `sp2-metrics/v1`
//! and `sp2-timeline/v1` documents.
//!
//! ## Determinism and the store
//!
//! The `dataset` lines are a pure function of the submission: campaign
//! results are bit-identical across engines, thread counts, and
//! instrumentation (the engine-equivalence suites prove it), and every
//! JSON number renders through one writer. So the service can treat the
//! rendered lines as *the* result: they are what subscribers stream,
//! what the store persists, and what a digest-hit replays — byte-equal
//! no matter which path produced them or what else was in flight. The
//! `metrics`/`timeline` events are deliberately outside that contract
//! (they carry wall-clock readings of this process) and are never
//! stored.
//!
//! ## Scheduling and fairness
//!
//! Submissions dedup on their content digest (single-flight: concurrent
//! identical submissions attach to one run), queue FIFO, and execute on
//! `campaigns` worker threads. Each campaign runs with the engine
//! configuration the daemon was started with; the vendored rayon pool
//! is virtual — helper threads are process-wide and work-steal across
//! whatever campaigns are in flight — so K concurrent campaigns share
//! the machine instead of oversubscribing it K-fold.

pub mod store;

use crate::error::Sp2Error;
use crate::experiments;
use crate::json::Json;
use crate::submission::Submission;
use crate::system::{Sp2System, DEFAULT_LIBRARY_SEED};
use crate::{metrics, timeline};
use sp2_cluster::{CampaignError, CampaignResult, CancelToken, ClusterConfig, EngineConfig};
use sp2_power2::FastForward;
use sp2_workload::WorkloadLibrary;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub use store::{Store, StoredJob};

/// Protocol schema tag.
pub const SCHEMA: &str = "sp2-serve/v1";

/// Longest request or response line either side will read, newline
/// included (16 MiB — an order of magnitude above the largest dataset
/// event a real campaign renders). A peer that streams bytes without
/// ever sending `\n` would otherwise grow the line buffer without
/// bound; past the cap the read fails as a protocol error instead.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// `read_line` with a ceiling: reads one `\n`-terminated line of at
/// most `limit` bytes (newline included) into `line`. Returns the byte
/// count (0 at EOF) or [`Sp2Error::Protocol`] once the line exceeds
/// the cap — at which point the stream is no longer line-synced and
/// the connection should be dropped.
fn read_line_capped(
    reader: &mut impl BufRead,
    line: &mut String,
    limit: usize,
) -> Result<usize, Sp2Error> {
    line.clear();
    let n = reader.by_ref().take(limit as u64 + 1).read_line(line)?;
    if n > limit {
        return Err(Sp2Error::Protocol(format!("line exceeds {limit} bytes")));
    }
    Ok(n)
}

/// One workload library serves every job: submissions don't vary the
/// machine model, and the library build (kernel measurement) is the
/// most expensive fixed cost in the process.
fn shared_library(fast_forward: FastForward) -> &'static WorkloadLibrary {
    static LIBRARY: OnceLock<WorkloadLibrary> = OnceLock::new();
    LIBRARY.get_or_init(|| {
        WorkloadLibrary::build_with(
            &ClusterConfig::default().machine,
            DEFAULT_LIBRARY_SEED,
            fast_forward,
        )
    })
}

/// Renders one dataset event line — THE deterministic unit of the
/// protocol. Server workers, local one-shot runs, the store, and
/// replays all share this one rendering, which is what makes
/// byte-comparing them meaningful.
fn dataset_line(digest_hex: &str, seq: usize, experiment: &str, doc: Json) -> String {
    Json::obj()
        .field("event", "dataset")
        .field("job", digest_hex)
        .field("seq", seq)
        .field("experiment", experiment)
        .field("doc", doc)
        .to_string_compact()
}

/// Executes a submission in-process (no daemon, no store) and returns
/// the dataset event lines — byte-identical to what `sp2 serve` would
/// stream for the same submission. `sp2 submit --local` and the CI
/// smoke diff ride this.
pub fn run_local(submission: &Submission, engine: EngineConfig) -> Result<Vec<String>, Sp2Error> {
    let digest = submission.digest_hex();
    let mut sys = submission.system(engine);
    let mut lines = Vec::with_capacity(submission.experiments().len());
    for (seq, id) in submission.experiments().iter().enumerate() {
        let exp = experiments::experiment_or_err(id)?;
        let dataset = sys.dataset(exp)?;
        lines.push(dataset_line(&digest, seq, id, dataset.json));
    }
    Ok(lines)
}

/// [`run_local`], also returning the primary campaign the datasets were
/// analyzed from — `sp2 archive` persists both in one container so a
/// later `--archive` run can replay the analysis without simulating.
pub fn run_local_archival(
    submission: &Submission,
    engine: EngineConfig,
) -> Result<(Vec<String>, CampaignResult), Sp2Error> {
    let digest = submission.digest_hex();
    let mut sys = submission.system(engine);
    let mut lines = Vec::with_capacity(submission.experiments().len());
    for (seq, id) in submission.experiments().iter().enumerate() {
        let exp = experiments::experiment_or_err(id)?;
        let dataset = sys.dataset(exp)?;
        lines.push(dataset_line(&digest, seq, id, dataset.json));
    }
    let campaign = sys.campaign()?.clone();
    Ok((lines, campaign))
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7598`. Port 0 binds ephemeral.
    pub addr: String,
    /// Result-store root directory.
    pub store_dir: PathBuf,
    /// Concurrent campaign workers (≥ 1).
    pub campaigns: usize,
    /// Engine configuration every campaign runs under. Affects speed
    /// and instrumentation only — never result bytes.
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7598".into(),
            store_dir: PathBuf::from("target/sp2-store"),
            campaigns: 2,
            engine: EngineConfig::default(),
        }
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Mutable job progress, guarded by the entry's mutex; subscribers wait
/// on the condvar and stream `lines[cursor..]` as they appear.
struct JobProgress {
    state: JobState,
    /// Completed dataset event lines, in stream order.
    lines: Vec<String>,
    /// Failure/cancellation detail for the terminal `error` event.
    message: Option<String>,
}

/// One submitted job: the single-flight unit keyed by digest.
struct JobEntry {
    digest_hex: String,
    submission: Submission,
    cancel: Arc<CancelToken>,
    progress: Mutex<JobProgress>,
    cond: Condvar,
}

impl JobEntry {
    fn new(submission: Submission, state: JobState, lines: Vec<String>) -> Arc<JobEntry> {
        Arc::new(JobEntry {
            digest_hex: submission.digest_hex(),
            submission,
            cancel: Arc::new(CancelToken::new()),
            progress: Mutex::new(JobProgress {
                state,
                lines,
                message: None,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobProgress> {
        match self.progress.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push_line(&self, line: String) {
        self.lock().lines.push(line);
        self.cond.notify_all();
    }

    fn finish(&self, state: JobState, message: Option<String>) {
        let mut p = self.lock();
        p.state = state;
        p.message = message;
        drop(p);
        self.cond.notify_all();
    }

    fn state(&self) -> JobState {
        self.lock().state
    }
}

struct ServerInner {
    store: Store,
    engine: EngineConfig,
    /// All jobs this process knows, in submission order (for `list`).
    jobs: Mutex<Vec<Arc<JobEntry>>>,
    queue: Mutex<VecDeque<Arc<JobEntry>>>,
    queue_cond: Condvar,
    stop: AtomicBool,
}

impl ServerInner {
    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, Vec<Arc<JobEntry>>> {
        match self.jobs.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<JobEntry>>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Registers a submission: attach to the in-flight twin (dedup), or
    /// load the stored result (store hit), or queue a fresh run.
    /// Returns `(entry, dedup, stored)`.
    fn submit(&self, submission: Submission) -> (Arc<JobEntry>, bool, bool) {
        let digest = submission.digest_hex();
        let mut jobs = self.lock_jobs();
        sp2_trace::dynamic::add("serve.submissions", 1);
        if let Some(entry) = jobs.iter().find(|j| j.digest_hex == digest) {
            sp2_trace::dynamic::add("serve.dedup_hits", 1);
            return (Arc::clone(entry), true, false);
        }
        if self.store.contains(&digest) {
            if let Ok(stored) = self.store.load(&digest) {
                sp2_trace::dynamic::add("serve.store_hits", 1);
                let entry = JobEntry::new(stored.submission, JobState::Done, stored.lines);
                jobs.push(Arc::clone(&entry));
                return (entry, false, true);
            }
            // A corrupt entry is not servable; fall through and re-run
            // (persist will atomically replace it with identical bytes).
        }
        let entry = JobEntry::new(submission, JobState::Queued, Vec::new());
        jobs.push(Arc::clone(&entry));
        drop(jobs);
        self.lock_queue().push_back(Arc::clone(&entry));
        self.queue_cond.notify_one();
        (entry, false, false)
    }

    /// Resolves a digest prefix to a unique job, pulling stored-only
    /// results into memory on demand.
    fn find_job(&self, prefix: &str) -> Result<Arc<JobEntry>, Sp2Error> {
        if prefix.is_empty() {
            return Err(Sp2Error::Protocol("empty job id".into()));
        }
        let mut matches: Vec<Arc<JobEntry>> = {
            let jobs = self.lock_jobs();
            jobs.iter()
                .filter(|j| j.digest_hex.starts_with(prefix))
                .cloned()
                .collect()
        };
        if matches.is_empty() {
            // Results persisted by an earlier daemon instance.
            let stored: Vec<String> = self
                .store
                .scan()
                .into_iter()
                .filter(|d| d.starts_with(prefix))
                .collect();
            for digest in stored {
                if let Ok(job) = self.store.load(&digest) {
                    let entry = JobEntry::new(job.submission, JobState::Done, job.lines);
                    self.lock_jobs().push(Arc::clone(&entry));
                    matches.push(entry);
                }
            }
        }
        match matches.len() {
            0 => Err(Sp2Error::Protocol(format!("unknown job: {prefix}"))),
            1 => Ok(matches.remove(0)),
            n => Err(Sp2Error::Protocol(format!(
                "ambiguous job id {prefix}: {n} matches"
            ))),
        }
    }

    /// The worker loop: take jobs FIFO until shutdown.
    fn worker(&self) {
        loop {
            let job = {
                let mut q = self.lock_queue();
                loop {
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    q = match self.queue_cond.wait(q) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
            };
            self.run_job(&job);
        }
    }

    /// Executes one job end to end: campaign + experiments, streaming a
    /// dataset line per experiment, persisting only on full completion.
    fn run_job(&self, job: &JobEntry) {
        if job.cancel.is_cancelled() {
            job.finish(JobState::Cancelled, Some("cancelled while queued".into()));
            return;
        }
        job.finish(JobState::Running, None);
        let scope = sp2_trace::dynamic::Scope::new(format!(
            "serve.job.{}",
            &job.digest_hex[..12.min(job.digest_hex.len())]
        ));
        let _span = sp2_trace::recording().then(|| {
            sp2_trace::events::span(
                format!(
                    "serve job {}",
                    &job.digest_hex[..8.min(job.digest_hex.len())]
                ),
                "serve",
            )
        });
        let start = std::time::Instant::now();
        let mut sys = Sp2System::builder()
            .spec(*job.submission.spec())
            .library(
                shared_library(match self.engine.fast_forward {
                    Some(false) => FastForward::Off,
                    _ => FastForward::Auto,
                })
                .clone(),
            )
            .engine(self.engine)
            .faults(job.submission.fault_rate())
            .fault_seed(job.submission.fault_seed())
            .cancel_token(Arc::clone(&job.cancel))
            .build();
        let mut lines: Vec<String> = Vec::new();
        for (seq, id) in job.submission.experiments().iter().enumerate() {
            if job.cancel.is_cancelled() {
                job.finish(JobState::Cancelled, Some("cancelled by request".into()));
                return;
            }
            let Some(exp) = experiments::experiment(id) else {
                // Validated at submit time; only a registry change
                // mid-flight could get here.
                job.finish(JobState::Failed, Some(format!("unknown experiment: {id}")));
                return;
            };
            match sys.dataset(exp) {
                Ok(dataset) => {
                    let line = dataset_line(&job.digest_hex, seq, id, dataset.json);
                    lines.push(line.clone());
                    scope.add("datasets", 1);
                    job.push_line(line);
                }
                Err(Sp2Error::Campaign(CampaignError::Cancelled)) => {
                    job.finish(JobState::Cancelled, Some("cancelled by request".into()));
                    return;
                }
                Err(e) => {
                    job.finish(JobState::Failed, Some(e.to_string()));
                    return;
                }
            }
        }
        scope.record_ns("wall", start.elapsed().as_nanos() as u64);
        if let Err(e) = self.store.persist(&job.submission, &lines) {
            job.finish(JobState::Failed, Some(format!("persisting result: {e}")));
            return;
        }
        job.finish(JobState::Done, None);
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // Queued-but-unstarted and running jobs both observe the token.
        for job in self.lock_jobs().iter() {
            if !job.state().terminal() {
                job.cancel.cancel();
            }
        }
        self.queue_cond.notify_all();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    inner: Arc<ServerInner>,
    campaigns: usize,
}

impl Server {
    /// Binds the listen socket and opens the store. The engine config's
    /// instrumentation switches are applied process-wide here, exactly
    /// as a one-shot run would.
    pub fn bind(config: ServeConfig) -> Result<Server, Sp2Error> {
        timeline::apply_engine_config(&config.engine);
        let store = Store::open(&config.store_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            inner: Arc::new(ServerInner {
                store,
                engine: config.engine,
                jobs: Mutex::new(Vec::new()),
                queue: Mutex::new(VecDeque::new()),
                queue_cond: Condvar::new(),
                stop: AtomicBool::new(false),
            }),
            campaigns: config.campaigns.max(1),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, Sp2Error> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the accept loop until a `shutdown` request; returns after
    /// the campaign workers have drained.
    pub fn run(self) -> Result<(), Sp2Error> {
        let addr = self.local_addr()?;
        let workers: Vec<_> = (0..self.campaigns)
            .map(|i| {
                let inner = Arc::clone(&self.inner);
                std::thread::Builder::new()
                    .name(format!("sp2-serve-worker-{i}"))
                    .spawn(move || inner.worker())
            })
            .collect::<Result<_, _>>()?;
        for conn in self.listener.incoming() {
            if self.inner.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let inner = Arc::clone(&self.inner);
            let _ = std::thread::Builder::new()
                .name("sp2-serve-conn".into())
                .spawn(move || handle_connection(&inner, stream, addr));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Binds and runs on a background thread (use port 0 for an
    /// ephemeral address) — the entry the in-process tests use; the CLI
    /// calls [`Server::run`] on the foreground thread instead.
    pub fn spawn(config: ServeConfig) -> Result<ServerHandle, Sp2Error> {
        let server = Server::bind(config)?;
        let addr = server.local_addr()?;
        let join = std::thread::Builder::new()
            .name("sp2-serve".into())
            .spawn(move || server.run())?;
        Ok(ServerHandle {
            addr,
            join: Some(join),
        })
    }
}

/// Handle on a background server from [`Server::spawn`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    join: Option<std::thread::JoinHandle<Result<(), Sp2Error>>>,
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(mut self) -> Result<(), Sp2Error> {
        let mut client = Client::connect(self.addr)?;
        let _ = client.request(&Json::obj().field("op", "shutdown"));
        if let Some(join) = self.join.take() {
            join.join()
                .map_err(|_| Sp2Error::Protocol("server thread panicked".into()))??;
        }
        Ok(())
    }
}

/// Per-connection request loop: one JSON document per line in, one
/// response line (or an event stream) per request out.
fn handle_connection(inner: &ServerInner, stream: TcpStream, self_addr: std::net::SocketAddr) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match read_line_capped(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(0) => break,
            Ok(_) => {}
            Err(Sp2Error::Protocol(msg)) => {
                // Overlong line: answer once, then drop the connection —
                // the stream is no longer line-synced.
                let _ = write_error(&mut writer, "protocol", &msg);
                break;
            }
            Err(_) => break, // client went away mid-line
        }
        let line = line.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match Json::parse(line) {
            Ok(req) => handle_request(inner, &req, &mut writer, self_addr),
            Err(e) => write_error(
                &mut writer,
                "protocol",
                &format!("request is not valid JSON: {e}"),
            ),
        };
        if outcome.is_err() {
            break; // client went away
        }
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
    }
}

fn write_line(w: &mut impl Write, doc: &Json) -> std::io::Result<()> {
    doc.write_compact_to(w)?;
    w.write_all(b"\n")?;
    w.flush()
}

fn write_error(w: &mut impl Write, code: &str, message: &str) -> std::io::Result<()> {
    write_line(
        w,
        &Json::obj()
            .field("ok", false)
            .field("code", code)
            .field("error", message),
    )
}

fn handle_request(
    inner: &ServerInner,
    req: &Json,
    w: &mut TcpStream,
    self_addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return write_error(w, "protocol", "missing field: op");
    };
    match op {
        "ping" => {
            let jobs = inner.lock_jobs().len();
            write_line(
                w,
                &Json::obj()
                    .field("ok", true)
                    .field("schema", SCHEMA)
                    .field("jobs", jobs),
            )
        }
        "submit" => {
            let Some(doc) = req.get("submission") else {
                return write_error(w, "protocol", "missing field: submission");
            };
            let submission = match Submission::from_json(doc) {
                Ok(s) => s,
                Err(e) => return write_error(w, "validation", &e.to_string()),
            };
            let wait = req
                .get("wait")
                .is_none_or(|v| matches!(v, Json::Bool(true)));
            let (job, dedup, stored) = inner.submit(submission);
            write_line(
                w,
                &Json::obj()
                    .field("ok", true)
                    .field("event", "job")
                    .field("job", job.digest_hex.as_str())
                    .field("state", job.state().as_str())
                    .field("dedup", dedup)
                    .field("stored", stored),
            )?;
            if wait {
                stream_job(&job, w)?;
                stream_instrumentation(w)?;
            }
            Ok(())
        }
        "status" => match find_from(inner, req, w)? {
            None => Ok(()),
            Some(job) => {
                let (state, datasets, message) = {
                    let p = job.lock();
                    (p.state, p.lines.len(), p.message.clone())
                };
                let mut doc = Json::obj()
                    .field("ok", true)
                    .field("job", job.digest_hex.as_str())
                    .field("state", state.as_str())
                    .field("datasets", datasets)
                    .field("total", job.submission.experiments().len());
                if let Some(m) = message {
                    doc = doc.field("error", m);
                }
                // `"live": true` asks for a snapshot of the daemon
                // itself alongside the job row: queue depth, engine
                // sweep progress, and — when the daemon runs with
                // instrumentation on — the full live metrics document.
                if matches!(req.get("live"), Some(Json::Bool(true))) {
                    let mut live = Json::obj()
                        .field("queue_depth", inner.lock_queue().len())
                        .field("sweeps", sp2_cluster::metrics::SWEEPS.get() as f64)
                        .field(
                            "sweeps_elided",
                            sp2_cluster::metrics::SWEEPS_ELIDED.get() as f64,
                        );
                    if sp2_trace::enabled() {
                        live = live.field("metrics", metrics::to_json(&metrics::snapshot()));
                    }
                    doc = doc.field("live", live);
                }
                write_line(w, &doc)
            }
        },
        "list" => {
            // In-memory jobs in submission order, then stored-only
            // digests from earlier daemon instances.
            let mut rows = Vec::new();
            let known: Vec<Arc<JobEntry>> = inner.lock_jobs().clone();
            for job in &known {
                let (state, datasets) = {
                    let p = job.lock();
                    (p.state, p.lines.len())
                };
                rows.push(
                    Json::obj()
                        .field("job", job.digest_hex.as_str())
                        .field("state", state.as_str())
                        .field("datasets", datasets)
                        .field(
                            "experiments",
                            Json::Arr(
                                job.submission
                                    .experiments()
                                    .iter()
                                    .map(|s| Json::Str(s.clone()))
                                    .collect(),
                            ),
                        ),
                );
            }
            for digest in inner.store.scan() {
                if known.iter().any(|j| j.digest_hex == digest) {
                    continue;
                }
                rows.push(
                    Json::obj()
                        .field("job", digest.as_str())
                        .field("state", "done")
                        .field("stored", true),
                );
            }
            write_line(
                w,
                &Json::obj().field("ok", true).field("jobs", Json::Arr(rows)),
            )
        }
        "fetch" => match find_from(inner, req, w)? {
            None => Ok(()),
            Some(job) => {
                write_line(
                    w,
                    &Json::obj()
                        .field("ok", true)
                        .field("event", "job")
                        .field("job", job.digest_hex.as_str())
                        .field("state", job.state().as_str())
                        .field("dedup", false)
                        .field("stored", job.state() == JobState::Done),
                )?;
                stream_job(&job, w)
            }
        },
        "cancel" => match find_from(inner, req, w)? {
            None => Ok(()),
            Some(job) => {
                job.cancel.cancel();
                // A queued job may never reach a worker again; settle it
                // here so subscribers unblock promptly. Running jobs
                // settle from the worker at the next cancellation point.
                {
                    let mut p = job.lock();
                    if p.state == JobState::Queued {
                        p.state = JobState::Cancelled;
                        p.message = Some("cancelled while queued".into());
                        job.cond.notify_all();
                    }
                }
                write_line(
                    w,
                    &Json::obj()
                        .field("ok", true)
                        .field("job", job.digest_hex.as_str())
                        .field("state", job.state().as_str()),
                )
            }
        },
        "shutdown" => {
            inner.shutdown();
            write_line(w, &Json::obj().field("ok", true))?;
            // The accept loop blocks in accept(); poke it so it can
            // observe the stop flag and exit.
            let _ = TcpStream::connect(self_addr);
            Ok(())
        }
        other => write_error(w, "protocol", &format!("unknown op: {other}")),
    }
}

/// Resolves the request's `job` field, writing the error response
/// itself when resolution fails (returns `Ok(None)` in that case).
fn find_from(
    inner: &ServerInner,
    req: &Json,
    w: &mut TcpStream,
) -> std::io::Result<Option<Arc<JobEntry>>> {
    let Some(prefix) = req.get("job").and_then(Json::as_str) else {
        write_error(w, "protocol", "missing field: job")?;
        return Ok(None);
    };
    match inner.find_job(prefix) {
        Ok(job) => Ok(Some(job)),
        Err(e) => {
            write_error(w, "protocol", &e.to_string())?;
            Ok(None)
        }
    }
}

/// Streams a job's dataset lines from the subscriber's cursor until the
/// job reaches a terminal state, then emits the terminal event. Lines
/// already complete (a replay) flush immediately; a live job streams
/// each line as the worker pushes it.
fn stream_job(job: &JobEntry, w: &mut impl Write) -> std::io::Result<()> {
    let mut cursor = 0usize;
    loop {
        let (chunk, state, message): (Vec<String>, JobState, Option<String>) = {
            let mut p = job.lock();
            while p.lines.len() == cursor && !p.state.terminal() {
                p = match job.cond.wait(p) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            (p.lines[cursor..].to_vec(), p.state, p.message.clone())
        };
        for line in &chunk {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
        cursor += chunk.len();
        if state.terminal() {
            let all_streamed = {
                let p = job.lock();
                p.lines.len() == cursor
            };
            if all_streamed {
                let doc = match state {
                    JobState::Done => Json::obj()
                        .field("event", "done")
                        .field("job", job.digest_hex.as_str())
                        .field("state", state.as_str())
                        .field("datasets", cursor),
                    _ => Json::obj()
                        .field("event", "error")
                        .field("job", job.digest_hex.as_str())
                        .field("state", state.as_str())
                        .field(
                            "error",
                            message.unwrap_or_else(|| state.as_str().to_string()),
                        ),
                };
                return write_line(w, &doc);
            }
        }
    }
}

/// When the daemon runs instrumented, trail the stream with the live
/// `sp2-metrics/v1` / `sp2-timeline/v1` documents. These carry
/// wall-clock readings of this process — a side channel, never stored,
/// never part of the byte-identity contract.
fn stream_instrumentation(w: &mut impl Write) -> std::io::Result<()> {
    if sp2_trace::enabled() {
        write_line(
            w,
            &Json::obj()
                .field("event", "metrics")
                .field("doc", metrics::to_json(&metrics::snapshot())),
        )?;
    }
    if sp2_trace::recording() {
        write_line(
            w,
            &Json::obj().field("event", "timeline").field(
                "doc",
                timeline::timeline_json(&sp2_trace::recorder::series()),
            ),
        )?;
    }
    Ok(())
}

/// A thin protocol client, shared by `sp2 submit`/`sp2 jobs` and the
/// integration tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, Sp2Error> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line.
    pub fn send(&mut self, doc: &Json) -> Result<(), Sp2Error> {
        write_line(&mut self.writer, doc)?;
        Ok(())
    }

    /// Reads one raw response line (None at EOF). Byte-level access so
    /// callers can diff or persist exactly what the server sent.
    pub fn recv_line(&mut self) -> Result<Option<String>, Sp2Error> {
        let mut line = String::new();
        let n = read_line_capped(&mut self.reader, &mut line, MAX_LINE_BYTES)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Reads one response line and parses it, converting `ok:false`
    /// responses into typed errors (`validation` →
    /// [`Sp2Error::Submission`], anything else → [`Sp2Error::Protocol`]).
    pub fn recv(&mut self) -> Result<Json, Sp2Error> {
        let line = self
            .recv_line()?
            .ok_or_else(|| Sp2Error::Protocol("server closed the connection".into()))?;
        let doc = Json::parse(&line)
            .map_err(|e| Sp2Error::Protocol(format!("bad response line: {e}")))?;
        if let Some(Json::Bool(false)) = doc.get("ok") {
            let msg = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_string();
            return match doc.get("code").and_then(Json::as_str) {
                Some("validation") => Err(Sp2Error::Submission(msg)),
                _ => Err(Sp2Error::Protocol(msg)),
            };
        }
        Ok(doc)
    }

    /// One-line request/response.
    pub fn request(&mut self, doc: &Json) -> Result<Json, Sp2Error> {
        self.send(doc)?;
        self.recv()
    }

    /// Submits and streams to completion. Returns the raw `dataset`
    /// event lines (exactly as sent — the deterministic payload) and
    /// the parsed terminal event. Side-channel `metrics`/`timeline`
    /// events are parsed past and dropped.
    pub fn submit_and_wait(&mut self, submission: &Submission) -> Result<SubmitOutcome, Sp2Error> {
        self.send(
            &Json::obj()
                .field("op", "submit")
                .field("submission", submission.to_json())
                .field("wait", true),
        )?;
        let header = self.recv()?;
        let mut lines = Vec::new();
        loop {
            let raw = self
                .recv_line()?
                .ok_or_else(|| Sp2Error::Protocol("stream ended before done".into()))?;
            let doc = Json::parse(&raw)
                .map_err(|e| Sp2Error::Protocol(format!("bad event line: {e}")))?;
            match doc.get("event").and_then(Json::as_str) {
                Some("dataset") => lines.push(raw),
                Some("done") | Some("error") => {
                    return Ok(SubmitOutcome {
                        header,
                        dataset_lines: lines,
                        terminal: doc,
                    })
                }
                _ => {} // metrics/timeline side channel
            }
        }
    }
}

/// What a waited submission produced.
pub struct SubmitOutcome {
    /// The `job` header event (digest, dedup/stored flags).
    pub header: Json,
    /// The raw dataset lines, byte-for-byte as streamed.
    pub dataset_lines: Vec<String>,
    /// The terminal `done` or `error` event.
    pub terminal: Json,
}

impl SubmitOutcome {
    /// Whether the job completed successfully.
    pub fn is_done(&self) -> bool {
        self.terminal.get("event").and_then(Json::as_str) == Some("done")
    }

    /// The terminal state string.
    pub fn state(&self) -> &str {
        self.terminal
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sp2-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spawn_server(tag: &str) -> ServerHandle {
        Server::spawn(ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: temp_dir(tag),
            campaigns: 2,
            engine: EngineConfig::default().threads(1),
        })
        .expect("server spawns")
    }

    /// `table1` needs no campaign, so protocol behavior tests run in
    /// milliseconds.
    fn cheap_submission() -> Submission {
        Submission::builder()
            .days(1)
            .experiment("table1")
            .build()
            .expect("valid")
    }

    #[test]
    fn ping_submit_status_list_shutdown() {
        let server = spawn_server("protocol");
        let mut client = Client::connect(server.addr()).expect("connects");

        let pong = client
            .request(&Json::obj().field("op", "ping"))
            .expect("pong");
        assert_eq!(pong.get("schema").and_then(Json::as_str), Some(SCHEMA));

        let sub = cheap_submission();
        let outcome = client.submit_and_wait(&sub).expect("submits");
        assert!(outcome.is_done(), "terminal: {:?}", outcome.terminal);
        assert_eq!(outcome.dataset_lines.len(), 1);
        let first = Json::parse(&outcome.dataset_lines[0]).expect("dataset line parses");
        assert_eq!(
            first.get("experiment").and_then(Json::as_str),
            Some("table1")
        );
        assert_eq!(
            first.get("job").and_then(Json::as_str),
            Some(sub.digest_hex().as_str())
        );

        let status = client
            .request(
                &Json::obj()
                    .field("op", "status")
                    .field("job", &sub.digest_hex()[..8]),
            )
            .expect("status by prefix");
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));

        let list = client
            .request(&Json::obj().field("op", "list"))
            .expect("lists");
        assert_eq!(
            list.get("jobs").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );

        // Plain status carries no daemon snapshot; `"live": true` adds
        // queue depth and engine sweep progress.
        assert!(status.get("live").is_none());
        let live_status = client
            .request(
                &Json::obj()
                    .field("op", "status")
                    .field("job", &sub.digest_hex()[..8])
                    .field("live", true),
            )
            .expect("live status");
        let live = live_status.get("live").expect("live snapshot present");
        assert_eq!(live.get("queue_depth").and_then(Json::as_f64), Some(0.0));
        assert!(live.get("sweeps").and_then(Json::as_f64).is_some());
        assert!(live.get("sweeps_elided").and_then(Json::as_f64).is_some());

        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn malformed_requests_answer_typed_errors() {
        let server = spawn_server("errors");
        let mut client = Client::connect(server.addr()).expect("connects");

        client
            .send(&Json::obj().field("op", "status"))
            .expect("sends");
        assert!(matches!(client.recv(), Err(Sp2Error::Protocol(_))));

        client
            .send(&Json::obj().field("op", "frobnicate"))
            .expect("sends");
        assert!(matches!(client.recv(), Err(Sp2Error::Protocol(_))));

        // A submission that fails validation answers code=validation.
        client
            .send(
                &Json::obj()
                    .field("op", "submit")
                    .field("submission", Json::obj().field("days", 0u32)),
            )
            .expect("sends");
        assert!(matches!(client.recv(), Err(Sp2Error::Submission(_))));

        // And the connection survives all of it.
        let pong = client
            .request(&Json::obj().field("op", "ping"))
            .expect("still alive");
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn read_line_capped_trips_exactly_past_the_limit() {
        let mut r = std::io::Cursor::new(b"abcdefgh\nrest".to_vec());
        let mut line = String::new();
        let n = read_line_capped(&mut r, &mut line, 16).expect("short line fits");
        assert_eq!(n, 9);
        assert_eq!(line, "abcdefgh\n");
        // A line of exactly the limit (newline included) still passes…
        let mut r = std::io::Cursor::new(b"1234567\n".to_vec());
        assert_eq!(read_line_capped(&mut r, &mut line, 8).expect("at limit"), 8);
        // …one byte more does not, newline or no newline.
        let mut r = std::io::Cursor::new(b"12345678\n".to_vec());
        assert!(matches!(
            read_line_capped(&mut r, &mut line, 8),
            Err(Sp2Error::Protocol(_))
        ));
        let mut r = std::io::Cursor::new(vec![b'x'; 32]);
        assert!(matches!(
            read_line_capped(&mut r, &mut line, 16),
            Err(Sp2Error::Protocol(_))
        ));
    }

    #[test]
    fn oversized_request_line_answers_protocol_error() {
        let server = spawn_server("oversize");
        let mut stream = TcpStream::connect(server.addr()).expect("connects");
        // One byte past the cap, never a newline. Exactly limit+1 bytes,
        // so the server consumes the whole blob before answering and the
        // close is a clean FIN rather than a reset that could eat the
        // error response.
        let blob = vec![b'a'; MAX_LINE_BYTES + 1];
        for chunk in blob.chunks(1 << 16) {
            stream.write_all(chunk).expect("server keeps reading");
        }
        stream.flush().expect("flushes");
        let mut response = String::new();
        BufReader::new(&stream)
            .read_line(&mut response)
            .expect("reads the error line");
        let doc = Json::parse(&response).expect("error line parses");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("protocol"));
        // The server hung up after answering: the stream is done.
        let mut rest = String::new();
        let n = BufReader::new(&stream).read_line(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "connection closes after the protocol error");
        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn digest_hit_replays_stored_bytes_across_instances() {
        let dir = temp_dir("restart");
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: dir.clone(),
            campaigns: 1,
            engine: EngineConfig::default().threads(1),
        };
        let sub = cheap_submission();

        let first = Server::spawn(config.clone()).expect("first instance");
        let mut client = Client::connect(first.addr()).expect("connects");
        let ran = client.submit_and_wait(&sub).expect("runs");
        assert!(ran.is_done());
        assert_eq!(ran.header.get("stored"), Some(&Json::Bool(false)));
        first.shutdown().expect("clean shutdown");

        // A fresh daemon over the same store serves the digest from disk.
        let second = Server::spawn(config).expect("second instance");
        let mut client = Client::connect(second.addr()).expect("connects");
        let replay = client.submit_and_wait(&sub).expect("replays");
        assert!(replay.is_done());
        assert_eq!(
            replay.header.get("stored"),
            Some(&Json::Bool(true)),
            "second instance must hit the store, not re-run"
        );
        assert_eq!(
            replay.dataset_lines, ran.dataset_lines,
            "replayed bytes equal the original stream"
        );
        second.shutdown().expect("clean shutdown");
        let _ = std::fs::remove_dir_all(dir);
    }
}
