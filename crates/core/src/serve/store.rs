//! The persistent result store behind `sp2 serve`.
//!
//! One directory per completed job, named by the submission's 32-hex
//! content digest:
//!
//! ```text
//! <root>/<digest-hex>/
//!     submission.json     the sp2-submission/v1 document (pretty)
//!     datasets.sp2a       the streamed dataset event lines, columnar
//!     job.json            terminal record: state + dataset count
//! ```
//!
//! Only **completed** jobs are ever persisted, and persistence is
//! atomic: everything is staged into `<digest>.partial-<pid>/` and
//! renamed into place in one step. A cancelled or crashed job therefore
//! leaves nothing visible, and a directory that *is* visible is always
//! servable. A crashed *daemon*, though, can leave its staging
//! directory behind — [`Store::open`] sweeps orphaned `.partial-<pid>`
//! directories whose writer is provably gone. `datasets.sp2a` is an
//! [`sp2-archive/v1`](crate::archive) container whose dataset blocks
//! hold the exact bytes that were streamed to subscribers, so a
//! digest-hit replay is bit-identical to the original stream by
//! construction — the NDJSON synthesized on fetch is the stream.

use crate::archive::{load_archive, ArchiveWriter};
use crate::error::Sp2Error;
use crate::json::Json;
use crate::submission::Submission;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Age past which an orphaned staging directory is reclaimed even when
/// pid liveness cannot be determined (no `/proc`): one day, far beyond
/// any real persist.
const STALE_PARTIAL_AGE: Duration = Duration::from_secs(24 * 60 * 60);

/// Whether `pid` names a live process, judged by `/proc/<pid>`.
/// `None` when the platform has no `/proc` to consult.
fn pid_alive(pid: u32) -> Option<bool> {
    let proc_dir = Path::new("/proc");
    if !proc_dir.is_dir() {
        return None;
    }
    Some(proc_dir.join(pid.to_string()).exists())
}

/// A job record loaded back from disk.
#[derive(Debug, Clone)]
pub struct StoredJob {
    /// The submission, revalidated from `submission.json`.
    pub submission: Submission,
    /// The dataset event lines, in stream order, without newlines.
    pub lines: Vec<String>,
}

/// Handle on the store root directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, reclaiming
    /// staging directories orphaned by crashed writers.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, Sp2Error> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let store = Store { root };
        store.sweep_orphaned_partials();
        Ok(store)
    }

    /// Removes `<digest>.partial-<pid>` leftovers whose writing process
    /// is gone. Liveness comes from `/proc/<pid>` where available; on
    /// platforms without `/proc` an age threshold stands in. Live
    /// siblings (another daemon mid-persist on the same store) are left
    /// alone. Best-effort: sweep failures never fail `open`.
    fn sweep_orphaned_partials(&self) {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            let Some((_, pid)) = name.split_once(".partial-") else {
                continue;
            };
            let Ok(pid) = pid.parse::<u32>() else {
                continue;
            };
            if pid == std::process::id()
                || pid_alive(pid).unwrap_or_else(|| {
                    // No /proc: keep anything younger than the age cutoff.
                    entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_none_or(|age| age < STALE_PARTIAL_AGE)
                })
            {
                continue;
            }
            let _ = fs::remove_dir_all(entry.path());
        }
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn job_dir(&self, digest_hex: &str) -> PathBuf {
        self.root.join(digest_hex)
    }

    /// Whether a completed result for this digest is on disk.
    pub fn contains(&self, digest_hex: &str) -> bool {
        self.job_dir(digest_hex).join("job.json").is_file()
    }

    /// Atomically persists a completed job: stage into a `.partial`
    /// sibling, fsync the data file, then rename into place. If another
    /// process raced us to the same digest the results are bit-identical
    /// by the determinism rule, so either rename winning is correct.
    pub fn persist(&self, submission: &Submission, lines: &[String]) -> Result<(), Sp2Error> {
        let digest = submission.digest_hex();
        let staged = self
            .root
            .join(format!("{digest}.partial-{}", std::process::id()));
        // A leftover from a previous crash of this same pid is stale.
        let _ = fs::remove_dir_all(&staged);
        fs::create_dir_all(&staged)?;

        let mut f = fs::File::create(staged.join("submission.json"))?;
        submission.to_json().write_to(&mut f)?;
        f.write_all(b"\n")?;

        let mut data = ArchiveWriter::create(
            std::io::BufWriter::new(fs::File::create(staged.join("datasets.sp2a"))?),
            None,
        )?;
        for line in lines {
            data.push_dataset_line(line)?;
        }
        let mut out = data.finish()?.into_inner().map_err(|e| {
            Sp2Error::Io(std::io::Error::other(format!(
                "flushing datasets.sp2a: {e}"
            )))
        })?;
        out.flush()?;

        let record = Json::obj()
            .field("schema", crate::serve::SCHEMA)
            .field("job", digest.as_str())
            .field("state", "done")
            .field("datasets", lines.len());
        let mut f = fs::File::create(staged.join("job.json"))?;
        record.write_to(&mut f)?;
        f.write_all(b"\n")?;

        let finished = self.job_dir(&digest);
        match fs::rename(&staged, &finished) {
            Ok(()) => Ok(()),
            // Lost a cross-process race: the other writer's (identical)
            // result is already in place; ours is redundant.
            Err(_) if finished.join("job.json").is_file() => {
                let _ = fs::remove_dir_all(&staged);
                Ok(())
            }
            Err(e) => Err(Sp2Error::Io(e)),
        }
    }

    /// Loads a completed job back, verifying that the stored submission
    /// still hashes to the directory it lives in (a defense against a
    /// hand-edited store serving wrong bytes) and that the line count
    /// matches the terminal record.
    pub fn load(&self, digest_hex: &str) -> Result<StoredJob, Sp2Error> {
        let dir = self.job_dir(digest_hex);
        let sub_doc = Json::parse(&fs::read_to_string(dir.join("submission.json"))?)
            .map_err(|e| Sp2Error::Protocol(format!("stored submission.json: {e}")))?;
        let submission = Submission::from_json(&sub_doc)?;
        if submission.digest_hex() != digest_hex {
            return Err(Sp2Error::Protocol(format!(
                "store entry {digest_hex} holds a submission with digest {}",
                submission.digest_hex()
            )));
        }
        let lines = load_archive(&dir.join("datasets.sp2a"))?.dataset_lines;
        let record = Json::parse(&fs::read_to_string(dir.join("job.json"))?)
            .map_err(|e| Sp2Error::Protocol(format!("stored job.json: {e}")))?;
        let datasets = record
            .get("datasets")
            .and_then(Json::as_f64)
            .unwrap_or(-1.0);
        if datasets != lines.len() as f64 {
            return Err(Sp2Error::Protocol(format!(
                "store entry {digest_hex}: job.json records {datasets} datasets, \
                 datasets.sp2a holds {}",
                lines.len()
            )));
        }
        Ok(StoredJob { submission, lines })
    }

    /// Scans the root for servable entries (completed `job.json`
    /// present, digest-shaped directory name), skipping `.partial`
    /// leftovers and anything malformed. Returns digests in sorted
    /// order so `list` output is stable.
    pub fn scan(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut digests: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| name.len() == 32 && name.bytes().all(|b| b.is_ascii_hexdigit()))
            .filter(|name| self.contains(name))
            .collect();
        digests.sort_unstable();
        digests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("sp2-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).expect("store opens")
    }

    fn demo_submission() -> Submission {
        Submission::builder()
            .days(1)
            .experiment("table1")
            .build()
            .expect("valid")
    }

    #[test]
    fn persist_then_load_round_trips_bytes() {
        let store = temp_store("roundtrip");
        let sub = demo_submission();
        let lines = vec![
            r#"{"event":"dataset","seq":0,"doc":{"x":1}}"#.to_string(),
            r#"{"event":"dataset","seq":1,"doc":{"x":2}}"#.to_string(),
        ];
        store.persist(&sub, &lines).expect("persists");
        let digest = sub.digest_hex();
        assert!(store.contains(&digest));
        let loaded = store.load(&digest).expect("loads");
        assert_eq!(loaded.lines, lines, "replayed bytes are the stored bytes");
        assert_eq!(loaded.submission.digest_hex(), digest);
        assert_eq!(store.scan(), vec![digest]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn partial_staging_is_never_visible() {
        let store = temp_store("partial");
        // Simulate a crashed writer: a .partial directory with content.
        let staged = store.root().join("deadbeef.partial-1");
        fs::create_dir_all(&staged).expect("mkdir");
        fs::write(staged.join("datasets.sp2a"), "{}\n").expect("write");
        assert!(store.scan().is_empty(), "partials are not servable");
        assert!(!store.contains("deadbeef"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn open_sweeps_orphaned_partials_but_keeps_live_writers() {
        let dir = std::env::temp_dir().join(format!("sp2-store-test-sweep-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir root");
        // An orphan from a pid that cannot be running (beyond pid_max)…
        let orphan = dir.join("deadbeef.partial-999999999");
        fs::create_dir_all(&orphan).expect("mkdir orphan");
        fs::write(orphan.join("datasets.sp2a"), "junk").expect("write");
        // …a sibling staged by *this* (live) process…
        let live = dir.join(format!("cafebabe.partial-{}", std::process::id()));
        fs::create_dir_all(&live).expect("mkdir live");
        // …and an unrelated file the sweep must not touch.
        fs::write(dir.join("notes.txt"), "keep me").expect("write");

        let _store = Store::open(&dir).expect("store opens");
        assert!(!orphan.exists(), "dead writer's staging dir is reclaimed");
        assert!(live.exists(), "live writer's staging dir survives");
        assert!(dir.join("notes.txt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_mismatched_digest() {
        let store = temp_store("mismatch");
        let sub = demo_submission();
        store.persist(&sub, &[]).expect("persists");
        // Copy the entry under a wrong digest name.
        let wrong = store.root().join("0".repeat(32));
        fs::create_dir_all(&wrong).expect("mkdir");
        for f in ["submission.json", "datasets.sp2a", "job.json"] {
            fs::copy(store.root().join(sub.digest_hex()).join(f), wrong.join(f)).expect("copy");
        }
        assert!(store.load(&"0".repeat(32)).is_err());
        let _ = fs::remove_dir_all(store.root());
    }
}
