//! Metrics aggregation and the simulator's self-measurement report.
//!
//! The instrumented crates each expose a `metrics::collect` hook;
//! [`snapshot`] gathers them (plus the dynamic per-experiment readings)
//! in a fixed order so snapshots are deterministic in shape. The
//! snapshot renders two ways: [`to_json`] for `sp2 --metrics` artifacts
//! and [`profile_report`] — the simulator's own Table 2, printed by
//! `sp2 profile`.

use crate::json::Json;
use sp2_trace::{dynamic, MetricValue, MetricsSnapshot};

/// Identifies the metrics JSON layout for downstream tooling.
pub const SCHEMA: &str = "sp2-metrics/v1";

/// Collects every subsystem's readings into one snapshot (node
/// simulator, campaign engine, daemon, batch system, then the dynamic
/// per-experiment map).
pub fn snapshot() -> MetricsSnapshot {
    // Sized for the static subsystems plus a few dynamic experiments —
    // the recorder calls this every sampled sweep.
    let mut snap = MetricsSnapshot::with_capacity(64);
    sp2_power2::metrics::collect(&mut snap);
    sp2_cluster::metrics::collect(&mut snap);
    sp2_rs2hpm::metrics::collect(&mut snap);
    sp2_pbs::metrics::collect(&mut snap);
    dynamic::collect(&mut snap);
    snap
}

/// Zeroes every subsystem's metrics (the signature cache's contents are
/// deliberately kept — clearing it would throw away work, not
/// measurements — but its hit/miss counters restart with the next
/// campaign via [`sp2_power2::SignatureCache::clear`] if wanted).
pub fn reset() {
    sp2_power2::metrics::reset();
    sp2_cluster::metrics::reset();
    sp2_rs2hpm::metrics::reset();
    sp2_pbs::metrics::reset();
    dynamic::reset();
}

/// Renders one reading as JSON (shared with the timeline exporter).
pub(crate) fn value_to_json(value: &MetricValue) -> Json {
    match *value {
        MetricValue::Count(n) => Json::from(n),
        MetricValue::Value(v) => Json::from(v),
        MetricValue::Duration { total_ns, count } => Json::obj()
            .field("total_ms", total_ns as f64 / 1e6)
            .field("spans", count),
    }
}

/// Renders a snapshot as the `sp2-metrics/v1` JSON document: a schema
/// tag, the enable flag, and one flat `metrics` object keyed by full
/// metric name.
pub fn to_json(snap: &MetricsSnapshot) -> Json {
    let mut metrics = Json::obj();
    for (name, value) in snap.entries() {
        metrics = metrics.field(name, value_to_json(value));
    }
    Json::obj()
        .field("schema", SCHEMA)
        .field("enabled", sp2_trace::enabled())
        .field("metrics", metrics)
}

fn count_of(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.get(name).and_then(MetricValue::as_count).unwrap_or(0)
}

fn value_of(snap: &MetricsSnapshot, name: &str) -> f64 {
    snap.get(name).map(MetricValue::as_f64).unwrap_or(0.0)
}

fn duration_of(snap: &MetricsSnapshot, name: &str) -> (f64, u64) {
    match snap.get(name) {
        Some(&MetricValue::Duration { total_ns, count }) => (total_ns as f64 / 1e6, count),
        _ => (0.0, 0),
    }
}

/// Renders the self-measurement report: what the paper's Table 2 is to
/// the SP2, this is to the simulator — where its cycles went, at what
/// rates, with what cache behavior.
pub fn profile_report(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    line("Self-measurement report (the simulator under its own trace layer)".into());
    line("=".repeat(66));

    let hits = count_of(snap, "power2.sigcache.hits");
    let misses = count_of(snap, "power2.sigcache.misses");
    line(format!(
        "signature cache   {hits} hits, {misses} misses ({:.1} % hit rate), \
         {} evictions, {} entries",
        value_of(snap, "power2.sigcache.hit_rate") * 100.0,
        count_of(snap, "power2.sigcache.evictions"),
        count_of(snap, "power2.sigcache.entries"),
    ));
    let (measure_ms, measure_n) = duration_of(snap, "power2.signature_measure");
    line(format!(
        "kernel simulator  {} runs, {:.3e} simulated cycles, \
         {measure_ms:.1} ms measuring over {measure_n} misses \
         ({:.3e} cycles/s)",
        count_of(snap, "power2.kernel_runs"),
        count_of(snap, "power2.simulated_cycles") as f64,
        value_of(snap, "power2.simulated_cycles_per_sec"),
    ));

    let (campaign_ms, campaigns) = duration_of(snap, "cluster.campaign");
    line(format!(
        "campaign engine   {campaigns} campaign(s), {} events, {:.1} ms wall, \
         {:.0} worker(s), {:.0} % advance utilization, \
         {:.0} simulated s / wall s",
        count_of(snap, "cluster.events"),
        campaign_ms,
        value_of(snap, "cluster.rayon_threads"),
        value_of(snap, "cluster.worker_utilization") * 100.0,
        value_of(snap, "cluster.sim_seconds_per_wall_second"),
    ));
    for phase in ["advance", "sample", "schedule", "faults"] {
        let (ms, n) = duration_of(snap, &format!("cluster.phase.{phase}"));
        line(format!("  phase {phase:<9} {ms:>10.1} ms over {n} passes"));
    }

    let (sweep_ms, sweeps) = duration_of(snap, "rs2hpm.sweep");
    line(format!(
        "daemon            {sweeps} sweeps, {sweep_ms:.1} ms total \
         (mean {:.1} us), {} node deltas, {} anomalies, {} baselines",
        value_of(snap, "rs2hpm.sweep_mean_us"),
        count_of(snap, "rs2hpm.nodes_sampled"),
        count_of(snap, "rs2hpm.anomalies"),
        count_of(snap, "rs2hpm.baselines"),
    ));

    line(format!(
        "batch system      {} submitted, {} started, {} requeued, \
         max queue depth {}",
        count_of(snap, "pbs.jobs_submitted"),
        count_of(snap, "pbs.jobs_started"),
        count_of(snap, "pbs.jobs_requeued"),
        count_of(snap, "pbs.queue_depth_max"),
    ));

    let experiments: Vec<(&str, &MetricValue)> = snap.with_prefix("core.experiment.").collect();
    if !experiments.is_empty() {
        line("experiments".into());
        for (name, value) in experiments {
            let id = name.trim_start_matches("core.experiment.");
            if let MetricValue::Duration { total_ns, count } = *value {
                let bytes = count_of(snap, &format!("core.dataset_bytes.{id}"));
                line(format!(
                    "  {id:<12} {:>10.1} ms over {count} run(s), {bytes} dataset bytes",
                    total_ns as f64 / 1e6,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_subsystem() {
        let snap = snapshot();
        for key in [
            "power2.sigcache.hit_rate",
            "cluster.phase.advance",
            "cluster.phase.sample",
            "rs2hpm.sweep",
            "pbs.queue_depth_max",
        ] {
            assert!(snap.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn json_document_has_schema_and_flat_metrics() {
        let snap = snapshot();
        let doc = to_json(&snap);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA),
            "schema tag"
        );
        let metrics = doc.get("metrics").expect("metrics object");
        assert!(metrics.get("power2.sigcache.hit_rate").is_some());
        let sweep = metrics.get("rs2hpm.sweep").expect("sweep duration");
        assert!(sweep.get("total_ms").is_some());
        assert!(sweep.get("spans").is_some());
    }

    #[test]
    fn profile_report_names_the_major_sections() {
        let report = profile_report(&snapshot());
        for needle in [
            "signature cache",
            "kernel simulator",
            "campaign engine",
            "phase advance",
            "daemon",
            "batch system",
        ] {
            assert!(report.contains(needle), "missing {needle}: {report}");
        }
    }
}
