//! JSON artifact export for regenerated experiments.
//!
//! Every experiment dataset can persist itself so EXPERIMENTS.md
//! entries are regenerable and diffable. Artifacts land in
//! `target/experiments/` by default; override with `SP2_EXPERIMENTS_DIR`.

use crate::json::ToJson;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory experiments write their JSON artifacts into.
pub fn artifacts_dir() -> PathBuf {
    std::env::var_os("SP2_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Serializes `data` to `<artifacts_dir>/<name>.json`, creating the
/// directory as needed. Returns the written path. The document streams
/// through a buffered writer rather than rendering to a `String` first,
/// so artifact size never doubles as resident text.
pub fn write_json<T: ToJson + ?Sized>(name: &str, data: &T) -> std::io::Result<PathBuf> {
    let dir = artifacts_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::io::BufWriter::new(fs::File::create(&path)?);
    data.to_json().write_to(&mut f)?;
    f.write_all(b"\n")?;
    f.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    struct Demo {
        x: u32,
    }

    impl ToJson for Demo {
        fn to_json(&self) -> Json {
            Json::obj().field("x", self.x)
        }
    }

    #[test]
    fn writes_json_artifact() {
        let dir = std::env::temp_dir().join(format!("sp2-export-test-{}", std::process::id()));
        std::env::set_var("SP2_EXPERIMENTS_DIR", &dir);
        let path = write_json("demo", &Demo { x: 7 }).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 7"));
        std::env::remove_var("SP2_EXPERIMENTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
