//! Flight-recorder exporters: Perfetto traces, timeline JSON, and the
//! terminal's own Figure 1.
//!
//! `sp2-trace` owns the capture machinery (the span-event log and the
//! interval recorder); this module owns everything that needs the rest
//! of the stack — the aggregate metrics collector and the [`Json`]
//! writer. Three consumers of one recording:
//!
//! - [`chrome_trace`] renders span events as Chrome trace-event JSON
//!   loadable in Perfetto or `chrome://tracing`. Wall-clock spans (the
//!   simulator's own execution) and simulated-clock spans (the PBS job
//!   lifecycle on the machine being simulated) get separate trace
//!   processes so the two clocks never share an axis.
//! - [`timeline_json`] dumps the interval time series as
//!   `sp2-timeline/v1` for external tooling.
//! - [`render_timeline`] prints per-phase/per-subsystem sparkline
//!   histories — the simulator's answer to the paper's Figure 1.

use crate::json::Json;
use sp2_trace::events::{Domain, SpanEvent};
use sp2_trace::recorder::{IntervalSample, TimeSeries};

/// Identifies the timeline JSON layout for downstream tooling.
pub const SCHEMA: &str = "sp2-timeline/v1";

/// Trace process id used for wall-clock (simulator execution) events.
const PID_WALL: u64 = 1;
/// Trace process id used for simulated-clock (modeled machine) events.
const PID_SIM: u64 = 2;

/// Switches the flight recorder on: installs the aggregate metrics
/// collector, applies the sampling cadence (in daemon sweeps), and
/// raises both the metric-capture and recording flags (the recorder
/// differences [`crate::metrics::snapshot`]s, which only move while
/// metric capture is on).
pub fn enable_recording(cadence: u64) {
    sp2_trace::recorder::install_collector(crate::metrics::snapshot);
    sp2_trace::recorder::set_cadence(cadence);
    sp2_trace::set_enabled(true);
    sp2_trace::set_recording(true);
}

/// Lowers the recording flag; buffered events and samples stay readable.
pub fn disable_recording() {
    sp2_trace::set_recording(false);
}

/// Applies every switch an [`sp2_cluster::EngineConfig`] carries,
/// including the flight-recorder cadence that the cluster layer cannot
/// apply itself (the recorder's collector is this crate's aggregate
/// metrics snapshot). `None` fields leave the process-wide settings
/// untouched, so applying a default config changes nothing.
pub fn apply_engine_config(engine: &sp2_cluster::EngineConfig) {
    engine.apply();
    if let Some(cadence) = engine.recording_cadence {
        enable_recording(cadence);
    }
}

fn pid(domain: Domain) -> u64 {
    match domain {
        Domain::Wall => PID_WALL,
        Domain::Sim => PID_SIM,
    }
}

fn metadata(name: &str, pid: u64) -> Json {
    Json::obj()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", pid as f64)
        .field("tid", 0.0)
        .field("args", Json::obj().field("name", name))
}

/// Renders span events as a Chrome trace-event document (the
/// `{"traceEvents": [...]}` object form, which Perfetto and
/// `chrome://tracing` both load). Spans become `ph:"X"` complete events,
/// instants `ph:"i"`; timestamps and durations are microseconds. The
/// `dropped_events` top-level field carries the drop-oldest counter so
/// truncation is visible in the artifact itself.
pub fn chrome_trace(events: &[SpanEvent], dropped: u64) -> Json {
    let mut trace_events = vec![
        metadata("sp2 simulator (wall clock)", PID_WALL),
        metadata("sp2 simulated machine (sim clock)", PID_SIM),
    ];
    for ev in events {
        let mut obj = Json::obj()
            .field("name", ev.name.as_ref())
            .field("cat", ev.cat)
            .field("pid", pid(ev.domain) as f64)
            .field("tid", ev.tid as f64)
            .field("ts", ev.ts_ns as f64 / 1e3);
        if ev.dur_ns > 0 {
            obj = obj.field("ph", "X").field("dur", ev.dur_ns as f64 / 1e3);
        } else {
            obj = obj.field("ph", "i").field("s", "t");
        }
        trace_events.push(obj);
    }
    Json::obj()
        .field("traceEvents", Json::Arr(trace_events))
        .field("displayTimeUnit", "ms")
        .field("schema", "sp2-trace-events/v1")
        .field("dropped_events", dropped as f64)
}

fn sample_to_json(sample: &IntervalSample) -> Json {
    let mut deltas = Json::obj();
    for (name, value) in &sample.deltas {
        deltas = deltas.field(name, crate::metrics::value_to_json(value));
    }
    Json::obj()
        .field("sweep", sample.sweep as f64)
        .field("sim_t", sample.sim_t)
        .field("discontinuity", sample.discontinuity)
        .field("deltas", deltas)
}

/// Renders the interval time series as the `sp2-timeline/v1` document:
/// schema tag, cadence, drop counter, and one object per sampled
/// interval (counts and durations are per-interval deltas, values are
/// instantaneous).
pub fn timeline_json(series: &TimeSeries) -> Json {
    Json::obj()
        .field("schema", SCHEMA)
        .field("cadence_sweeps", series.cadence as f64)
        .field("dropped_samples", series.dropped as f64)
        .field(
            "samples",
            Json::Arr(series.samples.iter().map(sample_to_json).collect()),
        )
}

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maximum sparkline width in characters; longer series are bucketed
/// (bucket value = max) so spikes survive the downsample.
const SPARK_WIDTH: usize = 64;

fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let buckets: Vec<f64> = if values.len() <= SPARK_WIDTH {
        values.to_vec()
    } else {
        (0..SPARK_WIDTH)
            .map(|b| {
                let lo = b * values.len() / SPARK_WIDTH;
                let hi = ((b + 1) * values.len() / SPARK_WIDTH).max(lo + 1);
                values[lo..hi].iter().copied().fold(f64::MIN, f64::max)
            })
            .collect()
    };
    let lo = buckets.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = buckets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    buckets
        .iter()
        .map(|&v| {
            if span <= f64::EPSILON {
                SPARKS[if v.abs() <= f64::EPSILON { 0 } else { 3 }]
            } else {
                let level = ((v - lo) / span * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[level.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// The metrics the terminal history plots, in display order: the four
/// campaign phases (per-interval milliseconds), then throughput and
/// utilization readings. Everything here exists in every aggregate
/// snapshot, so the render never depends on workload specifics.
const TIMELINE_ROWS: [(&str, &str); 15] = [
    ("cluster.phase.advance", "phase advance (ms)"),
    ("cluster.phase.sample", "phase sample (ms)"),
    ("cluster.phase.schedule", "phase schedule (ms)"),
    ("cluster.phase.faults", "phase faults (ms)"),
    ("cluster.events", "engine events"),
    ("power2.kernel_runs", "kernel runs"),
    ("rs2hpm.nodes_sampled", "node deltas"),
    ("pbs.jobs_started", "jobs started"),
    ("pbs.queue_depth", "queue depth"),
    ("cluster.worker_utilization", "worker utilization"),
    ("cluster.toplev.dispatch", "toplev dispatch (%)"),
    ("cluster.toplev.fpu", "toplev fpu (%)"),
    ("cluster.toplev.dcache_tlb", "toplev dcache+tlb (%)"),
    ("cluster.toplev.icache", "toplev icache (%)"),
    ("cluster.toplev.io_wait", "toplev io-wait (%)"),
];

/// Renders the recorded history as aligned sparkline rows — the
/// simulator's own Figure 1. One row per phase/throughput metric, each
/// labeled with its interval min/max; discontinuities and ring drops are
/// called out in the footer rather than silently absorbed.
pub fn render_timeline(series: &TimeSeries) -> String {
    let mut out = String::new();
    out.push_str("Flight-recorder timeline (per-interval deltas per daemon sweep sample)\n");
    out.push_str(&"=".repeat(70));
    out.push('\n');
    if series.samples.is_empty() {
        out.push_str("(no samples recorded)\n");
        return out;
    }
    let first = series.samples[0].sim_t;
    let last = series.samples[series.samples.len() - 1].sim_t;
    out.push_str(&format!(
        "{} samples, cadence {} sweep(s), sim t {:.0} s .. {:.0} s ({:.1} days)\n\n",
        series.samples.len(),
        series.cadence,
        first,
        last,
        (last - first) / 86_400.0,
    ));
    let label_width = TIMELINE_ROWS
        .iter()
        .map(|(_, label)| label.len())
        .max()
        .unwrap_or(0);
    for (name, label) in TIMELINE_ROWS {
        let values: Vec<f64> = series.points(name).iter().map(|&(_, v)| v).collect();
        if values.is_empty() {
            continue;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "{label:<label_width$}  {}  [{lo:.2} .. {hi:.2}]\n",
            sparkline(&values),
        ));
    }
    let discontinuities = series.samples.iter().filter(|s| s.discontinuity).count();
    out.push('\n');
    out.push_str(&format!(
        "{discontinuities} discontinuity(ies) re-baselined, {} sample(s) dropped by the ring\n",
        series.dropped,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2_trace::MetricValue;
    use std::borrow::Cow;

    fn ev(name: &'static str, domain: Domain, ts_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name: Cow::Borrowed(name),
            cat: "test",
            tid: 7,
            domain,
            ts_ns,
            dur_ns,
        }
    }

    fn sample(sweep: u64, sim_t: f64, advance_ms: f64, started: u64) -> IntervalSample {
        IntervalSample {
            sweep,
            sim_t,
            discontinuity: false,
            deltas: vec![
                (
                    "cluster.phase.advance".into(),
                    MetricValue::Duration {
                        total_ns: (advance_ms * 1e6) as u64,
                        count: 1,
                    },
                ),
                ("pbs.jobs_started".into(), MetricValue::Count(started)),
            ],
        }
    }

    fn series(samples: Vec<IntervalSample>) -> TimeSeries {
        TimeSeries {
            cadence: 1,
            samples,
            dropped: 0,
        }
    }

    #[test]
    fn chrome_trace_round_trips_and_separates_domains() {
        let doc = chrome_trace(
            &[
                ev("advance", Domain::Wall, 1_000, 5_000),
                ev("job 3", Domain::Sim, 900_000_000_000, 1_800_000_000_000),
                ev("requeue", Domain::Sim, 950_000_000_000, 0),
            ],
            2,
        );
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert!(parsed.bits_eq(&doc), "export must round-trip exactly");

        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // Two process_name metadata records plus the three events.
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("advance"))
            .expect("wall span present");
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(5.0));
        let job = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("job 3"))
            .expect("sim span present");
        assert_eq!(job.get("pid").and_then(Json::as_f64), Some(2.0));
        let instant = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("requeue"))
            .expect("instant present");
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            parsed.get("dropped_events").and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn timeline_json_carries_schema_and_deltas() {
        let doc = timeline_json(&series(vec![sample(1, 900.0, 2.5, 4)]));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let samples = doc.get("samples").and_then(Json::as_arr).expect("samples");
        assert_eq!(samples.len(), 1);
        let deltas = samples[0].get("deltas").expect("deltas object");
        assert_eq!(
            deltas.get("pbs.jobs_started").and_then(Json::as_f64),
            Some(4.0)
        );
        let parsed = Json::parse(&doc.to_string_pretty()).expect("valid JSON");
        assert!(parsed.bits_eq(&doc));
    }

    #[test]
    fn render_timeline_plots_known_rows() {
        let samples = (1..=40)
            .map(|i| sample(i, i as f64 * 900.0, (i % 7) as f64, i % 3))
            .collect();
        let text = render_timeline(&series(samples));
        assert!(text.contains("phase advance (ms)"), "{text}");
        assert!(text.contains("jobs started"), "{text}");
        assert!(text.contains("40 samples"), "{text}");
        assert!(
            text.contains('█') && text.contains('▁'),
            "sparklines span the range: {text}"
        );
        // Rows with no recorded metric are skipped, not rendered empty.
        assert!(!text.contains("worker utilization"), "{text}");
    }

    #[test]
    fn render_timeline_handles_empty_and_flat_series() {
        let empty = render_timeline(&series(Vec::new()));
        assert!(empty.contains("(no samples recorded)"), "{empty}");
        let flat: Vec<IntervalSample> = (1..=5)
            .map(|i| sample(i, i as f64 * 900.0, 3.0, 0))
            .collect();
        let text = render_timeline(&series(flat));
        assert!(text.contains("phase advance"), "{text}");
        assert!(text.contains("[3.00 .. 3.00]"), "{text}");
    }

    #[test]
    fn sparkline_downsamples_keeping_spikes() {
        let mut values = vec![0.0; 1_000];
        values[987] = 100.0;
        let line = sparkline(&values);
        assert_eq!(line.chars().count(), SPARK_WIDTH);
        assert!(line.contains('█'), "spike survives bucketing: {line}");
    }
}
