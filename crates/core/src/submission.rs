//! The canonical campaign submission.
//!
//! Every way of asking this system for results — a one-shot CLI run, a
//! `sp2 submit` against a running daemon, a test harness — reduces to
//! one [`Submission`]: the campaign spec, the fault configuration, and
//! the ordered list of experiments to evaluate over it. The struct
//! replaces the ad-hoc `(CampaignSpec, FaultPlan, seed, …)` plumbing
//! that used to thread through the CLI: front ends *translate* into a
//! `Submission`, and everything downstream executes it.
//!
//! ## The digest
//!
//! [`Submission::digest`] is a 128-bit FNV-1a hash (the same
//! [`sp2_power2::Fnv128`] primitive the signature cache keys on —
//! stable across processes and platforms, unlike `DefaultHasher`) over
//! a canonical little-endian byte encoding of exactly the
//! result-determining fields. Engine kind, thread count, fast-forward,
//! and instrumentation switches are deliberately **excluded**: the
//! engine-equivalence and recorder-bit-identity test suites prove
//! results are bit-identical under every such configuration, so two
//! submissions that differ only there *are the same request*. That
//! makes the digest a sound result-store key and dedup handle — a
//! digest hit may serve stored bytes, and concurrent identical
//! submissions may share one run.

use crate::error::Sp2Error;
use crate::experiments;
use crate::json::Json;
use crate::system::{Sp2System, DEFAULT_FAULT_SEED};
use sp2_cluster::EngineConfig;
use sp2_power2::Fnv128;
use sp2_workload::CampaignSpec;
use std::hash::Hasher as _;

/// Schema tag for the JSON form (and domain separator for the digest).
pub const SCHEMA: &str = "sp2-submission/v1";

/// Seeds must survive a JSON round trip, where every number is an
/// `f64`; integers above 2^53 would silently lose bits.
const MAX_JSON_SAFE_INT: u64 = 1 << 53;

/// A validated campaign request: what to simulate and which experiments
/// to evaluate — nothing about *how* to run it (engine, threads,
/// instrumentation), because results are bit-identical under every
/// engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    spec: CampaignSpec,
    fault_rate: f64,
    fault_seed: u64,
    experiments: Vec<String>,
}

/// Builder for [`Submission`] seeded with the paper's defaults; `build`
/// rejects anything the engine or registry would choke on later.
#[derive(Debug, Clone)]
pub struct SubmissionBuilder {
    spec: CampaignSpec,
    fault_rate: f64,
    fault_seed: u64,
    experiments: Vec<String>,
}

impl Default for SubmissionBuilder {
    fn default() -> Self {
        SubmissionBuilder {
            spec: CampaignSpec::default(),
            fault_rate: 0.0,
            fault_seed: DEFAULT_FAULT_SEED,
            experiments: Vec::new(),
        }
    }
}

impl SubmissionBuilder {
    /// Campaign length in days.
    pub fn days(mut self, days: u32) -> Self {
        self.spec.days = days;
        self
    }

    /// Master seed for the submission trace.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Mean weekday submission rate.
    pub fn mean_jobs_per_day(mut self, rate: f64) -> Self {
        self.spec.mean_jobs_per_day = rate;
        self
    }

    /// Weekend demand factor.
    pub fn weekend_factor(mut self, factor: f64) -> Self {
        self.spec.weekend_factor = factor;
        self
    }

    /// Replaces the whole campaign spec.
    pub fn spec(mut self, spec: CampaignSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Fault-injection rate (0 = fault-free).
    pub fn faults(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Seed for the fault plan.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Appends one experiment id (order is preserved and significant —
    /// it is the order results stream back in).
    pub fn experiment(mut self, id: impl Into<String>) -> Self {
        self.experiments.push(id.into());
        self
    }

    /// Appends several experiment ids.
    pub fn experiments<I, S>(mut self, ids: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.experiments.extend(ids.into_iter().map(Into::into));
        self
    }

    /// Validates and produces the submission.
    pub fn build(self) -> Result<Submission, Sp2Error> {
        // Revalidate the spec through its own builder so the rules live
        // in exactly one place.
        let spec = CampaignSpec::builder()
            .days(self.spec.days)
            .seed(self.spec.seed)
            .mean_jobs_per_day(self.spec.mean_jobs_per_day)
            .weekend_factor(self.spec.weekend_factor)
            .build()
            .map_err(|e| Sp2Error::Submission(e.to_string()))?;
        if !self.fault_rate.is_finite() || self.fault_rate < 0.0 {
            return Err(Sp2Error::Submission(format!(
                "fault rate must be a finite rate >= 0, got {}",
                self.fault_rate
            )));
        }
        for (name, v) in [("seed", spec.seed), ("fault seed", self.fault_seed)] {
            if v > MAX_JSON_SAFE_INT {
                return Err(Sp2Error::Submission(format!(
                    "{name} {v} exceeds 2^53 and would not survive the JSON wire format"
                )));
            }
        }
        if self.experiments.is_empty() {
            return Err(Sp2Error::Submission(
                "a submission needs at least one experiment".into(),
            ));
        }
        for id in &self.experiments {
            if experiments::experiment(id).is_none() {
                return Err(Sp2Error::Submission(format!(
                    "unknown experiment: {id} (try `sp2 list`)"
                )));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for id in &self.experiments {
            if !seen.insert(id.as_str()) {
                return Err(Sp2Error::Submission(format!("duplicate experiment: {id}")));
            }
        }
        Ok(Submission {
            spec,
            fault_rate: self.fault_rate,
            fault_seed: self.fault_seed,
            experiments: self.experiments,
        })
    }
}

impl Submission {
    /// Starts a builder with the paper's defaults and no experiments.
    pub fn builder() -> SubmissionBuilder {
        SubmissionBuilder::default()
    }

    /// The campaign spec this submission simulates.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The fault-injection rate (0 = fault-free).
    pub fn fault_rate(&self) -> f64 {
        self.fault_rate
    }

    /// The fault-plan seed.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// The experiment ids, in evaluation order.
    pub fn experiments(&self) -> &[String] {
        &self.experiments
    }

    /// The 128-bit content digest over the result-determining fields
    /// (see the module docs for what is — and deliberately is not —
    /// covered). Floats hash by IEEE bit pattern, matching the
    /// bit-identity the determinism tests guarantee.
    pub fn digest(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write(SCHEMA.as_bytes());
        h.write(&[0]);
        h.write(&self.spec.days.to_le_bytes());
        h.write(&self.spec.seed.to_le_bytes());
        h.write(&self.spec.mean_jobs_per_day.to_bits().to_le_bytes());
        h.write(&self.spec.weekend_factor.to_bits().to_le_bytes());
        h.write(&self.fault_rate.to_bits().to_le_bytes());
        h.write(&self.fault_seed.to_le_bytes());
        for id in &self.experiments {
            h.write(id.as_bytes());
            // NUL-separate ids so ["a","bc"] and ["ab","c"] differ.
            h.write(&[0]);
        }
        h.finish128()
    }

    /// The digest as 32 lowercase hex digits — the result-store
    /// directory name and the job id prefix on the wire.
    pub fn digest_hex(&self) -> String {
        format!("{:032x}", self.digest())
    }

    /// The JSON form (`sp2-submission/v1`): what `sp2 submit` sends and
    /// the result store records alongside each job.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("days", self.spec.days)
            .field("seed", self.spec.seed)
            .field("mean_jobs_per_day", self.spec.mean_jobs_per_day)
            .field("weekend_factor", self.spec.weekend_factor)
            .field("fault_rate", self.fault_rate)
            .field("fault_seed", self.fault_seed)
            .field(
                "experiments",
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            )
    }

    /// Parses and validates the JSON form. Unknown or missing fields,
    /// wrong types, and anything `build` rejects all surface as
    /// [`Sp2Error::Submission`].
    pub fn from_json(doc: &Json) -> Result<Submission, Sp2Error> {
        let bad = |m: &str| Sp2Error::Submission(m.to_string());
        if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
            if schema != SCHEMA {
                return Err(Sp2Error::Submission(format!(
                    "unsupported submission schema: {schema} (want {SCHEMA})"
                )));
            }
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| Sp2Error::Submission(format!("missing numeric field: {key}")))
        };
        let int = |key: &str| -> Result<u64, Sp2Error> {
            let v = num(key)?;
            if v < 0.0 || v.trunc() != v {
                return Err(Sp2Error::Submission(format!(
                    "field {key} must be a non-negative integer, got {v}"
                )));
            }
            Ok(v as u64)
        };
        let ids = doc
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing field: experiments"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("experiments must be an array of id strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Submission::builder()
            .days(u32::try_from(int("days")?).map_err(|_| bad("days out of range"))?)
            .seed(int("seed")?)
            .mean_jobs_per_day(num("mean_jobs_per_day")?)
            .weekend_factor(num("weekend_factor")?)
            .faults(num("fault_rate")?)
            .fault_seed(int("fault_seed")?)
            .experiments(ids)
            .build()
    }

    /// Assembles an [`Sp2System`] that executes this submission under
    /// `engine`. The engine configuration affects only speed and
    /// instrumentation, never the result bytes — that is the invariant
    /// the digest leans on.
    pub fn system(&self, engine: EngineConfig) -> Sp2System {
        Sp2System::builder()
            .spec(self.spec)
            .engine(engine)
            .faults(self.fault_rate)
            .fault_seed(self.fault_seed)
            .build()
    }

    /// [`Submission::system`] with a cancellation token attached, for
    /// schedulers that may need to abort the campaign mid-run.
    pub fn system_with_cancel(
        &self,
        engine: EngineConfig,
        cancel: std::sync::Arc<sp2_cluster::CancelToken>,
    ) -> Sp2System {
        Sp2System::builder()
            .spec(self.spec)
            .engine(engine)
            .faults(self.fault_rate)
            .fault_seed(self.fault_seed)
            .cancel_token(cancel)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Submission {
        Submission::builder()
            .days(2)
            .seed(7)
            .faults(0.5)
            .fault_seed(11)
            .experiments(["table1", "summary"])
            .build()
            .expect("valid submission")
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = demo();
        assert_eq!(a.digest(), demo().digest(), "same fields, same digest");
        assert_eq!(a.digest_hex().len(), 32);

        let b = Submission::builder()
            .days(2)
            .seed(8)
            .faults(0.5)
            .fault_seed(11)
            .experiments(["table1", "summary"])
            .build()
            .expect("valid");
        assert_ne!(a.digest(), b.digest(), "seed must perturb the digest");

        let c = Submission::builder()
            .days(2)
            .seed(7)
            .faults(0.5)
            .fault_seed(11)
            .experiments(["summary", "table1"])
            .build()
            .expect("valid");
        assert_ne!(a.digest(), c.digest(), "experiment order is significant");
    }

    #[test]
    fn json_round_trip_preserves_digest() {
        let a = demo();
        let b = Submission::from_json(&a.to_json()).expect("round-trips");
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        // And through the wire rendering too.
        let parsed = Json::parse(&a.to_json().to_string_compact()).expect("parses");
        let c = Submission::from_json(&parsed).expect("round-trips");
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn build_rejects_bad_submissions() {
        let no_exp = Submission::builder().days(1).build();
        assert!(matches!(no_exp, Err(Sp2Error::Submission(_))));
        let unknown = Submission::builder().days(1).experiment("fig9").build();
        assert!(unknown.is_err());
        let dup = Submission::builder()
            .days(1)
            .experiments(["table1", "table1"])
            .build();
        assert!(dup.is_err());
        let zero_days = Submission::builder().days(0).experiment("table1").build();
        assert!(zero_days.is_err());
        let bad_rate = Submission::builder()
            .days(1)
            .faults(f64::NAN)
            .experiment("table1")
            .build();
        assert!(bad_rate.is_err());
        let big_seed = Submission::builder()
            .days(1)
            .seed(u64::MAX)
            .experiment("table1")
            .build();
        assert!(big_seed.is_err(), "seeds above 2^53 don't survive JSON");
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for bad in [
            Json::obj(),
            Json::obj().field("schema", "sp2-metrics/v1"),
            Json::obj()
                .field("days", 1u32)
                .field("seed", 1.5f64)
                .field("mean_jobs_per_day", 54.0)
                .field("weekend_factor", 0.45)
                .field("fault_rate", 0.0)
                .field("fault_seed", 1u32)
                .field("experiments", vec!["table1"]),
        ] {
            assert!(
                matches!(Submission::from_json(&bad), Err(Sp2Error::Submission(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn engine_configuration_is_not_part_of_the_identity() {
        // The digest covers the request, not the execution strategy —
        // there is simply no way to feed an engine config into it.
        let sub = demo();
        let sys = sub.system(EngineConfig::default().threads(2));
        assert_eq!(sys.spec().days, 2);
        assert_eq!(sys.fault_rate(), 0.5);
        assert_eq!(sys.fault_seed(), 11);
    }
}
