//! The unified error type for the facade's fallible public API.
//!
//! Every failure the assembly layer can hit — a bad cluster
//! configuration, a campaign spec that fails validation, an engine
//! failure, an unknown experiment id, an artifact that cannot be
//! written — surfaces as one [`Sp2Error`], so callers (the `sp2` binary
//! above all) can match on the class of failure and exit accordingly
//! instead of unwinding through a panic.

use sp2_cluster::{CampaignError, ClusterConfigError};
use sp2_workload::CampaignSpecError;

/// Any error the `sp2-core` facade can return.
#[derive(Debug)]
pub enum Sp2Error {
    /// The cluster configuration failed validation.
    Config(ClusterConfigError),
    /// The campaign spec failed validation.
    Spec(CampaignSpecError),
    /// The campaign engine failed (thread pool, scheduler invariant).
    Campaign(CampaignError),
    /// No experiment with this id is registered.
    UnknownExperiment(String),
    /// An artifact could not be written.
    Io(std::io::Error),
    /// A [`crate::Submission`] failed validation (same exit class as a
    /// bad campaign spec — the submission is the spec's canonical form).
    Submission(String),
    /// A malformed serve-protocol request or response: not valid JSON,
    /// missing fields, or an operation on a job the server doesn't know.
    Protocol(String),
}

impl std::fmt::Display for Sp2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sp2Error::Config(e) => write!(f, "cluster configuration: {e}"),
            Sp2Error::Spec(e) => write!(f, "campaign spec: {e}"),
            Sp2Error::Campaign(e) => write!(f, "campaign engine: {e}"),
            Sp2Error::UnknownExperiment(id) => write!(f, "unknown experiment: {id}"),
            Sp2Error::Io(e) => write!(f, "artifact i/o: {e}"),
            Sp2Error::Submission(m) => write!(f, "submission: {m}"),
            Sp2Error::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for Sp2Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Sp2Error::Config(e) => Some(e),
            Sp2Error::Spec(e) => Some(e),
            Sp2Error::Campaign(e) => Some(e),
            Sp2Error::UnknownExperiment(_) => None,
            Sp2Error::Io(e) => Some(e),
            Sp2Error::Submission(_) | Sp2Error::Protocol(_) => None,
        }
    }
}

impl From<ClusterConfigError> for Sp2Error {
    fn from(e: ClusterConfigError) -> Self {
        Sp2Error::Config(e)
    }
}

impl From<CampaignSpecError> for Sp2Error {
    fn from(e: CampaignSpecError) -> Self {
        Sp2Error::Spec(e)
    }
}

impl From<CampaignError> for Sp2Error {
    fn from(e: CampaignError) -> Self {
        Sp2Error::Campaign(e)
    }
}

impl From<std::io::Error> for Sp2Error {
    fn from(e: std::io::Error) -> Self {
        Sp2Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_class_and_cause() {
        let e = Sp2Error::UnknownExperiment("fig9".to_string());
        assert!(e.to_string().contains("fig9"));
        let e: Sp2Error = std::io::Error::other("disk full").into();
        assert!(e.to_string().contains("disk full"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn conversions_preserve_variants() {
        let e: Sp2Error = CampaignError::ThreadPool("boom".to_string()).into();
        assert!(matches!(e, Sp2Error::Campaign(_)));
        assert!(e.to_string().contains("boom"));
    }
}
