//! Facade for the SP2 HPM reproduction.
//!
//! [`Sp2System`] wires the substrates together — the POWER2 node model,
//! the HPM, the RS2HPM tool chain, PBS, the switch, and the synthetic NAS
//! workload — and exposes one runner per table and figure of the paper's
//! evaluation:
//!
//! | Experiment | Runner | Paper content |
//! |---|---|---|
//! | Table 1 | [`experiments::table1`] | the NAS 22-counter selection |
//! | Table 2 | [`experiments::table2`] | Mips/Mops/Mflops, good days |
//! | Table 3 | [`experiments::table3`] | full rate breakdown |
//! | Table 4 | [`experiments::table4`] | hierarchical memory performance |
//! | Figure 1 | [`experiments::fig1`] | daily Gflops + utilization history |
//! | Figure 2 | [`experiments::fig2`] | walltime vs nodes requested |
//! | Figure 3 | [`experiments::fig3`] | Mflops/node vs nodes requested |
//! | Figure 4 | [`experiments::fig4`] | 16-node performance history |
//! | Figure 5 | [`experiments::fig5`] | performance vs system intervention |
//! | §5 calibration | [`experiments::calibration`] | 240 Mflops matmul etc. |
//!
//! ```no_run
//! use sp2_core::Sp2System;
//!
//! let mut system = Sp2System::nas_1996(30); // 30-day campaign
//! let fig1 = sp2_core::experiments::fig1::run(system.campaign());
//! println!("{}", fig1.render());
//! ```

pub mod experiments;
pub mod export;
pub mod plot;
pub mod render;
pub mod system;

pub use sp2_cluster::{CampaignResult, ClusterConfig};
pub use sp2_workload::{CampaignSpec, JobMix, WorkloadLibrary};
pub use system::Sp2System;
