//! Facade for the SP2 HPM reproduction.
//!
//! [`Sp2System`] wires the substrates together — the POWER2 node model,
//! the HPM, the RS2HPM tool chain, PBS, the switch, the synthetic NAS
//! workload, and the seeded fault layer — and runs campaigns on the
//! parallel engine. The public API is fallible: campaign and experiment
//! entry points return [`Result`] with the unified [`Sp2Error`], so
//! callers decide how a bad configuration or a failed engine run exits.
//! Every table and figure of the paper's evaluation is an
//! [`experiments::Experiment`] registered in
//! [`experiments::all_experiments`], and every rendered exhibit ends in
//! a data-quality footer describing how complete the underlying
//! (possibly fault-degraded) campaign data was:
//!
//! | Id | Paper content |
//! |---|---|
//! | `table1` | the NAS 22-counter selection |
//! | `table2` | Mips/Mops/Mflops, good days |
//! | `table3` | full rate breakdown |
//! | `table4` | hierarchical memory performance |
//! | `fig1` | daily Gflops + utilization history |
//! | `fig2` | walltime vs nodes requested |
//! | `fig3` | Mflops/node vs nodes requested |
//! | `fig4` | 16-node performance history |
//! | `fig5` | performance vs system intervention |
//! | `calibration` | §5 reference kernels (240 Mflops matmul etc.) |
//! | `iowait` | §7 extension: measured I/O-wait attribution |
//! | `toplev` | top-down bottleneck accounting + counter-group scheduler |
//! | `availability` | fault impact and measurement error vs a twin |
//! | `summary` | headline statistics vs the paper |
//!
//! ```no_run
//! use sp2_core::{experiments, Sp2Error, Sp2System};
//!
//! fn main() -> Result<(), Sp2Error> {
//!     let mut system = Sp2System::builder().days(30).threads(0).faults(0.05).build();
//!     let fig1 = system.dataset(experiments::experiment_or_err("fig1")?)?;
//!     println!("{}", fig1.rendered);
//!     Ok(())
//! }
//! ```

#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod archive;
pub mod compare;
pub mod error;
pub mod experiments;
pub mod export;
pub mod json;
pub mod metrics;
pub mod plot;
pub mod render;
pub mod serve;
pub mod submission;
pub mod system;
pub mod timeline;
pub mod toplev;

pub use archive::{ArchiveCodec, ArchiveReader, ArchiveWriter, ColumnarCodec, TextCodec};
pub use compare::{CompareOutcome, CompareReport, Tolerance};
pub use error::Sp2Error;
pub use experiments::{
    all_experiments, experiment, experiment_or_err, DataQuality, Dataset, Experiment,
    ExperimentInput, SelectionKind,
};
pub use json::{Json, NdjsonWriter, ToJson};
pub use sp2_cluster::{CampaignResult, ClusterConfig, FaultPlan, FaultSummary};
pub use sp2_workload::{CampaignSpec, JobMix, WorkloadLibrary};
pub use submission::{Submission, SubmissionBuilder};
pub use system::{Sp2System, Sp2SystemBuilder};
