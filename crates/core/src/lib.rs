//! Facade for the SP2 HPM reproduction.
//!
//! [`Sp2System`] wires the substrates together — the POWER2 node model,
//! the HPM, the RS2HPM tool chain, PBS, the switch, and the synthetic NAS
//! workload — and runs campaigns on the parallel engine. Every table and
//! figure of the paper's evaluation is an [`experiments::Experiment`]
//! registered in [`experiments::all_experiments`]:
//!
//! | Id | Paper content |
//! |---|---|
//! | `table1` | the NAS 22-counter selection |
//! | `table2` | Mips/Mops/Mflops, good days |
//! | `table3` | full rate breakdown |
//! | `table4` | hierarchical memory performance |
//! | `fig1` | daily Gflops + utilization history |
//! | `fig2` | walltime vs nodes requested |
//! | `fig3` | Mflops/node vs nodes requested |
//! | `fig4` | 16-node performance history |
//! | `fig5` | performance vs system intervention |
//! | `calibration` | §5 reference kernels (240 Mflops matmul etc.) |
//! | `iowait` | §7 extension: measured I/O-wait attribution |
//! | `summary` | headline statistics vs the paper |
//!
//! ```no_run
//! use sp2_core::{experiments, Sp2System};
//!
//! let mut system = Sp2System::builder().days(30).threads(0).build();
//! let fig1 = system.dataset(experiments::experiment("fig1").unwrap());
//! println!("{}", fig1.rendered);
//! ```

pub mod experiments;
pub mod export;
pub mod json;
pub mod plot;
pub mod render;
pub mod system;

pub use experiments::{all_experiments, experiment, Dataset, Experiment, SelectionKind};
pub use json::{Json, ToJson};
pub use sp2_cluster::{CampaignResult, ClusterConfig};
pub use sp2_workload::{CampaignSpec, JobMix, WorkloadLibrary};
pub use system::{Sp2System, Sp2SystemBuilder};
