//! System assembly and campaign caching.

use crate::experiments::{Dataset, Experiment, SelectionKind};
use sp2_cluster::{run_campaign_with_threads, run_replications, CampaignResult, ClusterConfig};
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};
use std::collections::HashMap;

/// Default seed for the measured workload library (the campaign year).
const DEFAULT_LIBRARY_SEED: u64 = 1998;

/// The assembled NAS SP2 measurement system.
///
/// Owns the cluster configuration, the measured workload library, the
/// job-mix model, and the campaign spec; lazily runs and caches one
/// campaign per counter selection so all twelve experiments can share
/// simulations. Campaigns run on the parallel engine — `threads`
/// controls the worker count, and results are bit-identical at any
/// thread count.
pub struct Sp2System {
    config: ClusterConfig,
    library: WorkloadLibrary,
    mix: JobMix,
    spec: CampaignSpec,
    threads: usize,
    campaigns: HashMap<SelectionKind, CampaignResult>,
}

/// Builder for [`Sp2System`]: the paper's configuration with any subset
/// of knobs overridden. Replaces the old all-positional `custom()`.
pub struct Sp2SystemBuilder {
    config: ClusterConfig,
    library: Option<WorkloadLibrary>,
    library_seed: u64,
    mix: JobMix,
    spec: CampaignSpec,
    threads: usize,
}

impl Default for Sp2SystemBuilder {
    fn default() -> Self {
        Sp2SystemBuilder {
            config: ClusterConfig::default(),
            library: None,
            library_seed: DEFAULT_LIBRARY_SEED,
            mix: JobMix::nas(),
            spec: CampaignSpec::default(),
            threads: 1,
        }
    }
}

impl Sp2SystemBuilder {
    /// Replaces the cluster configuration.
    pub fn config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Uses a prebuilt workload library instead of building one from the
    /// machine description and [`Sp2SystemBuilder::library_seed`].
    pub fn library(mut self, library: WorkloadLibrary) -> Self {
        self.library = Some(library);
        self
    }

    /// Seed for building the workload library (default 1998).
    pub fn library_seed(mut self, seed: u64) -> Self {
        self.library_seed = seed;
        self
    }

    /// Replaces the job mix.
    pub fn mix(mut self, mix: JobMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the whole campaign spec.
    pub fn spec(mut self, spec: CampaignSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Campaign length in days.
    pub fn days(mut self, days: u32) -> Self {
        self.spec.days = days;
        self
    }

    /// Campaign trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Worker threads for the campaign engine (0 = one per core,
    /// default 1). Results are identical at any setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Assembles the system.
    pub fn build(self) -> Sp2System {
        let library = self
            .library
            .unwrap_or_else(|| WorkloadLibrary::build(&self.config.machine, self.library_seed));
        Sp2System {
            config: self.config,
            library,
            mix: self.mix,
            spec: self.spec,
            threads: self.threads,
            campaigns: HashMap::new(),
        }
    }
}

impl Sp2System {
    /// A builder starting from the paper's configuration.
    pub fn builder() -> Sp2SystemBuilder {
        Sp2SystemBuilder::default()
    }

    /// The paper's configuration: 144 nodes, NAS counter selection, NAS
    /// job mix, with a campaign of `days` days (270 in the paper; shorter
    /// for quick runs).
    pub fn nas_1996(days: u32) -> Self {
        Sp2System::builder().days(days).build()
    }

    /// Builds a system with every component explicit (ablations).
    #[deprecated(note = "use Sp2System::builder() — positional construction is error-prone")]
    pub fn custom(
        config: ClusterConfig,
        library: WorkloadLibrary,
        mix: JobMix,
        spec: CampaignSpec,
    ) -> Self {
        Sp2System::builder()
            .config(config)
            .library(library)
            .mix(mix)
            .spec(spec)
            .build()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The measured workload library.
    pub fn library(&self) -> &WorkloadLibrary {
        &self.library
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Campaign-engine worker threads (0 = one per core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread count for subsequent campaign runs.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The [`SelectionKind`] matching the system's own configuration, if
    /// any. The primary campaign is cached under this kind.
    fn own_kind(&self) -> Option<SelectionKind> {
        [SelectionKind::Nas, SelectionKind::IoAware]
            .into_iter()
            .find(|k| k.selection() == self.config.selection)
    }

    /// Runs (or returns the cached) campaign under the system's own
    /// counter selection.
    pub fn campaign(&mut self) -> &CampaignResult {
        let kind = self.own_kind().unwrap_or(SelectionKind::Nas);
        self.campaign_with_selection(kind, true)
    }

    /// Runs (or returns the cached) campaign under `kind`'s counter
    /// selection, re-running the simulation with the selection swapped
    /// if the system's own configuration watches different counters.
    pub fn campaign_for(&mut self, kind: SelectionKind) -> &CampaignResult {
        let own = self.own_kind() == Some(kind);
        self.campaign_with_selection(kind, own)
    }

    fn campaign_with_selection(&mut self, kind: SelectionKind, own: bool) -> &CampaignResult {
        if !self.campaigns.contains_key(&kind) {
            let mut config = self.config.clone();
            if !own {
                config.selection = kind.selection();
            }
            let jobs = trace::generate(&self.spec, &self.mix, &self.library);
            let result = run_campaign_with_threads(
                &config,
                &self.library,
                &jobs,
                self.spec.days,
                self.threads,
            );
            self.campaigns.insert(kind, result);
        }
        &self.campaigns[&kind]
    }

    /// Runs one experiment, providing whatever campaign it declares it
    /// needs (none, the primary selection, or the io-aware selection).
    pub fn dataset(&mut self, exp: &dyn Experiment) -> Dataset {
        if exp.needs_campaign() {
            exp.run(self.campaign_for(exp.selection()))
        } else {
            let empty = CampaignResult::empty(self.config.machine, exp.selection().selection());
            exp.run(&empty)
        }
    }

    /// Runs every registered experiment in presentation order.
    pub fn run_all(&mut self) -> Vec<Dataset> {
        crate::experiments::all_experiments()
            .iter()
            .map(|e| self.dataset(*e))
            .collect()
    }

    /// Runs `replications` seed-sharded copies of the campaign in
    /// parallel (seeds `spec.seed + 0..replications`), returning them in
    /// replication order regardless of scheduling.
    pub fn replicated_campaigns(&self, replications: usize) -> Vec<CampaignResult> {
        run_replications(
            &self.config,
            &self.library,
            &self.mix,
            &self.spec,
            replications,
        )
    }

    /// Discards the cached campaigns (after changing the spec).
    pub fn invalidate(&mut self) {
        self.campaigns.clear();
    }

    /// Replaces the campaign spec and discards cached campaigns.
    pub fn respec(&mut self, spec: CampaignSpec) {
        self.spec = spec;
        self.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_cached() {
        let mut sys = Sp2System::nas_1996(2);
        let a = sys.campaign().samples.len();
        let b = sys.campaign().samples.len();
        assert_eq!(a, b);
        assert_eq!(a, 2 * 96 + 1);
    }

    #[test]
    fn invalidate_allows_respec() {
        let mut sys = Sp2System::nas_1996(1);
        assert_eq!(sys.campaign().days, 1);
        let spec = CampaignSpec {
            days: 2,
            ..*sys.spec()
        };
        sys.respec(spec);
        assert_eq!(sys.campaign().days, 2);
    }

    #[test]
    fn builder_overrides_compose() {
        let mut sys = Sp2System::builder().days(1).seed(11).threads(2).build();
        assert_eq!(sys.spec().days, 1);
        assert_eq!(sys.spec().seed, 11);
        assert_eq!(sys.threads(), 2);
        assert_eq!(sys.campaign().days, 1);
    }

    #[test]
    fn io_aware_campaign_cached_separately() {
        let mut sys = Sp2System::nas_1996(1);
        let nas_samples = sys.campaign().samples.len();
        let io = sys.campaign_for(crate::experiments::SelectionKind::IoAware);
        assert!(io.selection.watches(sp2_hpm::Signal::IoWaitCycles));
        assert_eq!(io.samples.len(), nas_samples);
        assert!(!sys
            .campaign_for(crate::experiments::SelectionKind::Nas)
            .selection
            .watches(sp2_hpm::Signal::IoWaitCycles));
    }

    #[test]
    fn dataset_dispatches_per_experiment_needs() {
        let mut sys = Sp2System::nas_1996(1);
        let d = sys.dataset(crate::experiments::experiment("table1").unwrap());
        assert_eq!(d.id, "table1");
        assert!(d.rendered.contains("user.fxu0"));
    }
}
