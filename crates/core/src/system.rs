//! System assembly, campaign caching, and fault configuration.

use crate::error::Sp2Error;
use crate::experiments::{Dataset, Experiment, ExperimentInput, SelectionKind};
use sp2_cluster::{
    run_campaign_cfg_cancellable, run_campaign_rotated, run_replications, CampaignResult,
    CancelToken, ClusterConfig, EngineConfig, FaultPlan, RotatedCampaign,
};
use sp2_hpm::SchedulePlan;
use sp2_power2::FastForward;
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};
use std::collections::HashMap;
use std::sync::Arc;

/// Default seed for the measured workload library (the campaign year).
pub const DEFAULT_LIBRARY_SEED: u64 = 1998;

/// Default seed for the fault plan, deliberately distinct from the
/// library and trace seeds so enabling faults perturbs nothing else.
pub const DEFAULT_FAULT_SEED: u64 = 4_096;

/// The assembled NAS SP2 measurement system.
///
/// Owns the cluster configuration, the measured workload library, the
/// job-mix model, the campaign spec, and the fault configuration;
/// lazily runs and caches one campaign per `(counter selection,
/// faulted)` pair so all thirteen experiments — including the
/// `availability` report, which needs a fault-free twin — can share
/// simulations. Campaigns run on the parallel engine — `threads`
/// controls the worker count, and results are bit-identical at any
/// thread count.
pub struct Sp2System {
    config: ClusterConfig,
    library: WorkloadLibrary,
    mix: JobMix,
    spec: CampaignSpec,
    engine: EngineConfig,
    threads: usize,
    fault_rate: f64,
    fault_seed: u64,
    cancel: Option<Arc<CancelToken>>,
    campaigns: HashMap<(SelectionKind, bool), CampaignResult>,
}

/// Builder for [`Sp2System`]: the paper's configuration with any subset
/// of knobs overridden.
pub struct Sp2SystemBuilder {
    config: ClusterConfig,
    library: Option<WorkloadLibrary>,
    library_seed: u64,
    mix: JobMix,
    spec: CampaignSpec,
    engine: EngineConfig,
    threads: usize,
    fault_rate: f64,
    fault_seed: u64,
    cancel: Option<Arc<CancelToken>>,
}

impl Default for Sp2SystemBuilder {
    fn default() -> Self {
        Sp2SystemBuilder {
            config: ClusterConfig::default(),
            library: None,
            library_seed: DEFAULT_LIBRARY_SEED,
            mix: JobMix::nas(),
            spec: CampaignSpec::default(),
            engine: EngineConfig::default(),
            threads: 1,
            fault_rate: 0.0,
            fault_seed: DEFAULT_FAULT_SEED,
            cancel: None,
        }
    }
}

impl Sp2SystemBuilder {
    /// Replaces the cluster configuration.
    pub fn config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Uses a prebuilt workload library instead of building one from the
    /// machine description and [`Sp2SystemBuilder::library_seed`].
    pub fn library(mut self, library: WorkloadLibrary) -> Self {
        self.library = Some(library);
        self
    }

    /// Seed for building the workload library (default 1998).
    pub fn library_seed(mut self, seed: u64) -> Self {
        self.library_seed = seed;
        self
    }

    /// Replaces the job mix.
    pub fn mix(mut self, mix: JobMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the whole campaign spec.
    pub fn spec(mut self, spec: CampaignSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Campaign length in days.
    pub fn days(mut self, days: u32) -> Self {
        self.spec.days = days;
        self
    }

    /// Campaign trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Worker threads for the campaign engine (0 = one per core,
    /// default 1). Results are identical at any setting. Shorthand for
    /// the same field on [`Sp2SystemBuilder::engine`]'s config, which
    /// wins when it sets threads explicitly.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the engine configuration: engine kind, worker threads,
    /// and the measurement switches (fast-forward, metrics, recording).
    /// Results are bit-identical under every engine configuration — only
    /// speed and instrumentation differ.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Fault-injection rate (0.0 = fault-free, the default; 1.0 roughly
    /// matches a troubled production month — see
    /// [`sp2_cluster::FaultPlan::generate`]).
    pub fn faults(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Seed for the fault plan (independent of the trace seed).
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Attaches a cooperative cancellation token: campaign runs poll it
    /// at every event boundary and fail with
    /// [`sp2_cluster::CampaignError::Cancelled`] once raised. The serve
    /// scheduler uses this so a `cancel` request reclaims the pool
    /// mid-campaign.
    pub fn cancel_token(mut self, cancel: Arc<CancelToken>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Assembles the system, applying the engine configuration's
    /// switches (so kernel measurement during library construction
    /// already honors them) and building the workload library under its
    /// fast-forward policy.
    pub fn build(self) -> Sp2System {
        crate::timeline::apply_engine_config(&self.engine);
        let fast_forward = match self.engine.fast_forward {
            Some(false) => FastForward::Off,
            _ => FastForward::Auto,
        };
        let library = self.library.unwrap_or_else(|| {
            WorkloadLibrary::build_with(&self.config.machine, self.library_seed, fast_forward)
        });
        Sp2System {
            config: self.config,
            library,
            mix: self.mix,
            spec: self.spec,
            engine: self.engine,
            threads: self.threads,
            fault_rate: self.fault_rate,
            fault_seed: self.fault_seed,
            cancel: self.cancel,
            campaigns: HashMap::new(),
        }
    }
}

impl Sp2System {
    /// A builder starting from the paper's configuration.
    pub fn builder() -> Sp2SystemBuilder {
        Sp2SystemBuilder::default()
    }

    /// The paper's configuration: 144 nodes, NAS counter selection, NAS
    /// job mix, with a campaign of `days` days (270 in the paper; shorter
    /// for quick runs).
    pub fn nas_1996(days: u32) -> Self {
        Sp2System::builder().days(days).build()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The measured workload library.
    pub fn library(&self) -> &WorkloadLibrary {
        &self.library
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Campaign-engine worker threads (0 = one per core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine configuration campaigns run under.
    pub fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// Sets the worker-thread count for subsequent campaign runs.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The configured fault-injection rate (0.0 = fault-free).
    pub fn fault_rate(&self) -> f64 {
        self.fault_rate
    }

    /// The fault-plan seed.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// Reconfigures fault injection and discards cached campaigns.
    pub fn set_faults(&mut self, rate: f64, seed: u64) {
        self.fault_rate = rate;
        self.fault_seed = seed;
        self.invalidate();
    }

    /// Whether campaigns run with fault injection.
    pub fn faulted(&self) -> bool {
        self.fault_rate > 0.0
    }

    /// The fault plan the configured knobs generate (empty when the rate
    /// is zero).
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::generate(
            self.config.nodes,
            self.spec.days,
            self.fault_rate,
            self.fault_seed,
        )
    }

    /// The [`SelectionKind`] matching the system's own configuration, if
    /// any. The primary campaign is cached under this kind.
    fn own_kind(&self) -> Option<SelectionKind> {
        [SelectionKind::Nas, SelectionKind::IoAware]
            .into_iter()
            .find(|k| k.selection() == self.config.selection)
    }

    /// Runs (or returns the cached) campaign under the system's own
    /// counter selection, with the configured faults.
    pub fn campaign(&mut self) -> Result<&CampaignResult, Sp2Error> {
        let kind = self.own_kind().unwrap_or(SelectionKind::Nas);
        let faulted = self.faulted();
        self.ensure_campaign(kind, true, faulted)?;
        Ok(&self.campaigns[&(kind, faulted)])
    }

    /// Runs (or returns the cached) campaign under `kind`'s counter
    /// selection with the configured faults, re-running the simulation
    /// with the selection swapped if the system's own configuration
    /// watches different counters.
    pub fn campaign_for(&mut self, kind: SelectionKind) -> Result<&CampaignResult, Sp2Error> {
        let own = self.own_kind() == Some(kind);
        let faulted = self.faulted();
        self.ensure_campaign(kind, own, faulted)?;
        Ok(&self.campaigns[&(kind, faulted)])
    }

    /// Runs (or returns the cached) fault-free twin campaign under
    /// `kind` — the same trace and seed with an empty fault plan.
    pub fn baseline_for(&mut self, kind: SelectionKind) -> Result<&CampaignResult, Sp2Error> {
        let own = self.own_kind() == Some(kind);
        self.ensure_campaign(kind, own, false)?;
        Ok(&self.campaigns[&(kind, false)])
    }

    /// Seeds the campaign cache with an externally produced result — an
    /// archived campaign loaded from disk, typically. Experiments asked
    /// for `(kind, faulted)` will analyze `result` instead of running
    /// the simulation; the caller vouches that it matches the system's
    /// configuration (days, selection, fault knobs).
    pub fn preload_campaign(&mut self, kind: SelectionKind, faulted: bool, result: CampaignResult) {
        self.campaigns.insert((kind, faulted), result);
    }

    fn ensure_campaign(
        &mut self,
        kind: SelectionKind,
        own: bool,
        faulted: bool,
    ) -> Result<(), Sp2Error> {
        if self.campaigns.contains_key(&(kind, faulted)) {
            return Ok(());
        }
        let mut config = self.config.clone();
        if !own {
            config.selection = kind.selection();
        }
        let jobs = trace::generate(&self.spec, &self.mix, &self.library);
        let faults = if faulted {
            self.fault_plan()
        } else {
            FaultPlan::none()
        };
        // The explicit engine config wins; the legacy `threads` knob
        // fills in when it leaves the pool size unset.
        let engine = EngineConfig {
            threads: Some(self.engine.threads.unwrap_or(self.threads)),
            ..self.engine
        };
        let result = run_campaign_cfg_cancellable(
            &config,
            &self.library,
            &jobs,
            self.spec.days,
            &faults,
            &engine,
            self.cancel.as_deref(),
        )?;
        self.campaigns.insert((kind, faulted), result);
        Ok(())
    }

    /// Runs a rotated campaign: one lockstep campaign per pass of
    /// `plan`, with the configured trace, faults, and engine — the
    /// multiplexed path for signal requests wider than one counter
    /// selection (see [`sp2_cluster::run_campaign_rotated`]). Not
    /// cached: the plan, not the system's selection, keys the result.
    pub fn rotated_campaign(&self, plan: &SchedulePlan) -> Result<RotatedCampaign, Sp2Error> {
        let jobs = trace::generate(&self.spec, &self.mix, &self.library);
        let faults = if self.faulted() {
            self.fault_plan()
        } else {
            FaultPlan::none()
        };
        let engine = EngineConfig {
            threads: Some(self.engine.threads.unwrap_or(self.threads)),
            ..self.engine
        };
        Ok(run_campaign_rotated(
            &self.config,
            &self.library,
            &jobs,
            self.spec.days,
            &faults,
            &engine,
            plan,
            self.cancel.as_deref(),
        )?)
    }

    /// Runs one experiment, providing whatever input it declares it
    /// needs (no campaign, the primary or io-aware campaign, and a
    /// fault-free twin for baseline-hungry experiments).
    ///
    /// While tracing is enabled, each experiment's analysis wall time
    /// (excluding the shared, cached campaign simulation) and dataset
    /// size land in the dynamic metrics as `core.experiment.<id>` and
    /// `core.dataset_bytes.<id>`.
    pub fn dataset(&mut self, exp: &dyn Experiment) -> Result<Dataset, Sp2Error> {
        if !exp.needs_campaign() {
            let empty = CampaignResult::empty(self.config.machine, exp.selection().selection());
            return Self::run_metered(exp, ExperimentInput::of(&empty));
        }
        let kind = exp.selection();
        let own = self.own_kind() == Some(kind);
        let faulted = self.faulted();
        self.ensure_campaign(kind, own, faulted)?;
        if exp.needs_baseline() {
            self.ensure_campaign(kind, own, false)?;
        }
        let campaign = &self.campaigns[&(kind, faulted)];
        let input = if exp.needs_baseline() {
            ExperimentInput::of(campaign).with_baseline(&self.campaigns[&(kind, false)])
        } else {
            ExperimentInput::of(campaign)
        };
        Self::run_metered(exp, input)
    }

    /// Runs the experiment's analysis, recording wall time and dataset
    /// size under the experiment's id when tracing is enabled.
    fn run_metered(exp: &dyn Experiment, input: ExperimentInput<'_>) -> Result<Dataset, Sp2Error> {
        let _ev = sp2_trace::recording()
            .then(|| sp2_trace::events::span(format!("experiment {}", exp.id()), "experiment"));
        if !sp2_trace::enabled() {
            return exp.run(input);
        }
        let start = std::time::Instant::now();
        let result = exp.run(input);
        let ns = start.elapsed().as_nanos() as u64;
        if let Ok(dataset) = &result {
            let id = exp.id();
            sp2_trace::dynamic::record_ns(&format!("core.experiment.{id}"), ns);
            let bytes = dataset.rendered.len() + dataset.json.to_string_pretty().len();
            sp2_trace::dynamic::add(&format!("core.dataset_bytes.{id}"), bytes as u64);
        }
        result
    }

    /// Runs every registered experiment in presentation order, stopping
    /// at the first failure.
    pub fn run_all(&mut self) -> Result<Vec<Dataset>, Sp2Error> {
        crate::experiments::all_experiments()
            .iter()
            .map(|e| self.dataset(*e))
            .collect()
    }

    /// Runs `replications` seed-sharded copies of the campaign in
    /// parallel (seeds `spec.seed + 0..replications`), each with the
    /// configured fault plan, returning them in replication order
    /// regardless of scheduling.
    pub fn replicated_campaigns(
        &self,
        replications: usize,
    ) -> Result<Vec<CampaignResult>, Sp2Error> {
        Ok(run_replications(
            &self.config,
            &self.library,
            &self.mix,
            &self.spec,
            replications,
            &self.fault_plan(),
        )?)
    }

    /// Discards the cached campaigns (after changing the spec).
    pub fn invalidate(&mut self) {
        self.campaigns.clear();
    }

    /// Replaces the campaign spec and discards cached campaigns.
    pub fn respec(&mut self, spec: CampaignSpec) {
        self.spec = spec;
        self.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_cached() {
        let mut sys = Sp2System::nas_1996(2);
        let a = sys.campaign().expect("campaign runs").samples.len();
        let b = sys.campaign().expect("campaign runs").samples.len();
        assert_eq!(a, b);
        assert_eq!(a, 2 * 96 + 1);
    }

    #[test]
    fn invalidate_allows_respec() {
        let mut sys = Sp2System::nas_1996(1);
        assert_eq!(sys.campaign().expect("campaign runs").days, 1);
        let spec = CampaignSpec {
            days: 2,
            ..*sys.spec()
        };
        sys.respec(spec);
        assert_eq!(sys.campaign().expect("campaign runs").days, 2);
    }

    #[test]
    fn builder_overrides_compose() {
        let mut sys = Sp2System::builder()
            .days(1)
            .seed(11)
            .threads(2)
            .faults(0.5)
            .fault_seed(9)
            .build();
        assert_eq!(sys.spec().days, 1);
        assert_eq!(sys.spec().seed, 11);
        assert_eq!(sys.threads(), 2);
        assert_eq!(sys.fault_rate(), 0.5);
        assert_eq!(sys.fault_seed(), 9);
        assert!(sys.faulted());
        assert_eq!(sys.campaign().expect("campaign runs").days, 1);
    }

    #[test]
    fn io_aware_campaign_cached_separately() {
        let mut sys = Sp2System::nas_1996(1);
        let nas_samples = sys.campaign().expect("campaign runs").samples.len();
        let io = sys
            .campaign_for(crate::experiments::SelectionKind::IoAware)
            .expect("campaign runs");
        assert!(io.selection.watches(sp2_hpm::Signal::IoWaitCycles));
        assert_eq!(io.samples.len(), nas_samples);
        assert!(!sys
            .campaign_for(crate::experiments::SelectionKind::Nas)
            .expect("campaign runs")
            .selection
            .watches(sp2_hpm::Signal::IoWaitCycles));
    }

    #[test]
    fn dataset_dispatches_per_experiment_needs() {
        let mut sys = Sp2System::nas_1996(1);
        let d = sys
            .dataset(crate::experiments::experiment("table1").expect("registered"))
            .expect("table1 runs");
        assert_eq!(d.id, "table1");
        assert!(d.rendered.contains("user.fxu0"));
    }

    #[test]
    fn faulted_and_baseline_campaigns_cached_separately() {
        let mut sys = Sp2System::builder()
            .days(1)
            .faults(2.0)
            .fault_seed(5)
            .build();
        assert!(!sys.fault_plan().is_empty());
        let faulted_samples = sys.campaign().expect("campaign runs").samples.len();
        let baseline_samples = sys
            .baseline_for(SelectionKind::Nas)
            .expect("twin runs")
            .samples
            .len();
        assert!(sys.campaign().expect("cached").faults.enabled);
        assert!(
            !sys.baseline_for(SelectionKind::Nas)
                .expect("cached")
                .faults
                .enabled
        );
        assert!(
            faulted_samples <= baseline_samples,
            "missed sweeps can only shrink the sample count"
        );
    }

    #[test]
    fn zero_rate_baseline_is_the_campaign() {
        let mut sys = Sp2System::builder().days(1).build();
        assert!(sys.fault_plan().is_empty());
        let a = sys.campaign().expect("campaign runs").samples.len();
        let b = sys
            .baseline_for(SelectionKind::Nas)
            .expect("twin runs")
            .samples
            .len();
        assert_eq!(a, b);
        assert_eq!(sys.campaigns.len(), 1, "one cache entry serves both");
    }
}
