//! System assembly and campaign caching.

use sp2_cluster::{run_campaign, CampaignResult, ClusterConfig};
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};

/// The assembled NAS SP2 measurement system.
///
/// Owns the cluster configuration, the measured workload library, the
/// job-mix model, and the campaign spec; lazily runs and caches the
/// campaign so several experiments can share one simulation.
pub struct Sp2System {
    config: ClusterConfig,
    library: WorkloadLibrary,
    mix: JobMix,
    spec: CampaignSpec,
    campaign: Option<CampaignResult>,
}

impl Sp2System {
    /// The paper's configuration: 144 nodes, NAS counter selection, NAS
    /// job mix, with a campaign of `days` days (270 in the paper; shorter
    /// for quick runs).
    pub fn nas_1996(days: u32) -> Self {
        let config = ClusterConfig::default();
        let library = WorkloadLibrary::build(&config.machine, 1998);
        Sp2System {
            config,
            library,
            mix: JobMix::nas(),
            spec: CampaignSpec {
                days,
                ..Default::default()
            },
            campaign: None,
        }
    }

    /// Builds a system with every component explicit (ablations).
    pub fn custom(
        config: ClusterConfig,
        library: WorkloadLibrary,
        mix: JobMix,
        spec: CampaignSpec,
    ) -> Self {
        Sp2System {
            config,
            library,
            mix,
            spec,
            campaign: None,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The measured workload library.
    pub fn library(&self) -> &WorkloadLibrary {
        &self.library
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Runs (or returns the cached) campaign.
    pub fn campaign(&mut self) -> &CampaignResult {
        if self.campaign.is_none() {
            let jobs = trace::generate(&self.spec, &self.mix, &self.library);
            let result = run_campaign(&self.config, &self.library, &jobs, self.spec.days);
            self.campaign = Some(result);
        }
        self.campaign.as_ref().unwrap()
    }

    /// Discards the cached campaign (after changing the spec).
    pub fn invalidate(&mut self) {
        self.campaign = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_cached() {
        let mut sys = Sp2System::nas_1996(2);
        let a = sys.campaign().samples.len();
        let b = sys.campaign().samples.len();
        assert_eq!(a, b);
        assert_eq!(a, 2 * 96 + 1);
    }

    #[test]
    fn invalidate_allows_respec() {
        let mut sys = Sp2System::nas_1996(1);
        assert_eq!(sys.campaign().days, 1);
        sys.spec.days = 2;
        sys.invalidate();
        assert_eq!(sys.campaign().days, 2);
    }
}
