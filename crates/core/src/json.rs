//! Minimal JSON document model for experiment artifacts.
//!
//! Experiments export their datasets as JSON so external tooling can
//! post-process them. The build environment vendors its dependencies, so
//! rather than a full serde_json stand-in this module provides the one
//! thing the repo needs: a value tree plus a deterministic pretty
//! printer. Object keys keep insertion order, which makes artifacts
//! diff-stable across runs.

use std::fmt;
use std::io;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (experiments have few keys; linear
    /// storage keeps output order deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Starts an empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object. On non-objects the call is a no-op in
    /// release builds (and trips a debug assertion in tests), so a
    /// construction bug degrades an artifact instead of aborting a
    /// campaign that took hours to run.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        } else {
            debug_assert!(false, "field({key:?}) on non-object {self:?}");
        }
        self
    }

    /// Looks a key up in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation, `"key": value` spacing.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        // Writing to a String cannot fail.
        let _ = self.render_pretty(&mut out, 0);
        out
    }

    /// Renders on one line with no whitespace — the NDJSON form. The
    /// same value model and number/string formatting as
    /// [`Json::to_string_pretty`], so a document round-trips identically
    /// through either rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        let _ = self.render_compact(&mut out);
        out
    }

    /// Streams the pretty rendering straight into an [`io::Write`]
    /// without materializing the document text. Year-scale artifacts
    /// (timelines, metrics dumps, campaign stores) go through this path
    /// so output size never shows up as a resident `String`.
    pub fn write_to<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        let mut sink = IoFmt {
            inner: out,
            err: None,
        };
        let res = self.render_pretty(&mut sink, 0);
        sink.finish(res)
    }

    /// Streams the compact (single-line) rendering into an
    /// [`io::Write`]; the building block for NDJSON streams.
    pub fn write_compact_to<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        let mut sink = IoFmt {
            inner: out,
            err: None,
        };
        let res = self.render_compact(&mut sink);
        sink.finish(res)
    }

    /// Parses JSON text back into the document model — the inverse of
    /// [`Json::to_string_pretty`], used to round-trip artifacts in tests
    /// and to compare metrics dumps. Accepts any standard JSON document;
    /// numbers become [`Json::Num`], so integer precision is bounded by
    /// `f64` (the writer never emits more). Surrogate-pair `\u` escapes
    /// are rejected (the writer only escapes control characters).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Structural equality with numbers compared bit-for-bit via
    /// [`f64::to_bits`], so `-0.0` differs from `0.0` and NaN equals NaN.
    /// The derived `PartialEq` follows IEEE comparison instead; the
    /// determinism tests want this stricter check.
    pub fn bits_eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a.to_bits() == b.to_bits(),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bits_eq(y))
            }
            (Json::Obj(a), Json::Obj(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.bits_eq(vb))
            }
            _ => false,
        }
    }

    fn render_pretty<W: fmt::Write>(&self, out: &mut W, indent: usize) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => write!(out, "{b}"),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return out.write_str("[]");
                }
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    out.write_char('\n')?;
                    push_indent(out, indent + 1)?;
                    item.render_pretty(out, indent + 1)?;
                }
                out.write_char('\n')?;
                push_indent(out, indent)?;
                out.write_char(']')
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return out.write_str("{}");
                }
                out.write_char('{')?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    out.write_char('\n')?;
                    push_indent(out, indent + 1)?;
                    write_str(out, key)?;
                    out.write_str(": ")?;
                    value.render_pretty(out, indent + 1)?;
                }
                out.write_char('\n')?;
                push_indent(out, indent)?;
                out.write_char('}')
            }
        }
    }

    fn render_compact<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => write!(out, "{b}"),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.render_compact(out)?;
                }
                out.write_char(']')
            }
            Json::Obj(fields) => {
                out.write_char('{')?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    write_str(out, key)?;
                    out.write_char(':')?;
                    value.render_compact(out)?;
                }
                out.write_char('}')
            }
        }
    }
}

/// Bridges an [`io::Write`] into the `fmt::Write`-generic renderers,
/// remembering the first underlying I/O error (the `fmt::Error` it
/// surfaces as carries no detail).
struct IoFmt<'a, W: io::Write> {
    inner: &'a mut W,
    err: Option<io::Error>,
}

impl<W: io::Write> IoFmt<'_, W> {
    fn finish(self, res: fmt::Result) -> io::Result<()> {
        match (res, self.err) {
            (_, Some(e)) => Err(e),
            (Ok(()), None) => Ok(()),
            // A fmt::Error with no captured io::Error can only come from
            // a formatting primitive itself, which never fails here.
            (Err(_), None) => Err(io::Error::other("formatting failed")),
        }
    }
}

impl<W: io::Write> fmt::Write for IoFmt<'_, W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            if self.err.is_none() {
                self.err = Some(e);
            }
            fmt::Error
        })
    }
}

/// Line-delimited JSON writer: each document renders compact on its own
/// line, flushed eagerly so a consumer tailing the stream (the serve
/// protocol, `tail -f` on an artifact) sees every line as soon as it is
/// complete.
pub struct NdjsonWriter<W: io::Write> {
    out: W,
    lines: u64,
}

impl<W: io::Write> NdjsonWriter<W> {
    pub fn new(out: W) -> Self {
        NdjsonWriter { out, lines: 0 }
    }

    /// Writes one document as a single line and flushes.
    pub fn write_doc(&mut self, doc: &Json) -> io::Result<()> {
        doc.write_compact_to(&mut self.out)?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Writes one pre-rendered line verbatim (it must already be a
    /// complete compact JSON document, no trailing newline). Replaying
    /// a stored stream uses this so the replayed bytes are exactly the
    /// stored bytes.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

fn push_indent<W: fmt::Write>(out: &mut W, levels: usize) -> fmt::Result {
    for _ in 0..levels {
        out.write_str("  ")?;
    }
    Ok(())
}

fn write_num<W: fmt::Write>(out: &mut W, v: f64) -> fmt::Result {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.write_str("null")
    } else if v == v.trunc() && v.abs() < 1e15 {
        write!(out, "{}", v as i64)
    } else {
        write!(out, "{v}")
    }
}

fn write_str<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent parser over the raw bytes. String content is
/// scanned bytewise — UTF-8 continuation bytes are all `>= 0x80`, so they
/// can never be mistaken for the `"` and `\` delimiters.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, lit: &'static str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            fields.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        if !self.eat(b'"') {
            return Err(self.err("expected a string"));
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid UTF-8 in string"))?;
            out.push_str(chunk);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let c = u32::from_str_radix(hex, 16)
                                .ok()
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // The scan above stops only at '"', '\\', or end of input.
                _ => return Err(self.err("unterminated string")),
            }
        }
    }
}

/// Conversion into the document model; every experiment dataset
/// implements this to drive `export::write_json`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Self {
                Json::Num(v as f64)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Self {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl<A: Into<Json>, B: Into<Json>> From<(A, B)> for Json {
    fn from((a, b): (A, B)) -> Self {
        Json::Arr(vec![a.into(), b.into()])
    }
}

impl<A: Into<Json>, B: Into<Json>, C: Into<Json>> From<(A, B, C)> for Json {
    fn from((a, b, c): (A, B, C)) -> Self {
        Json::Arr(vec![a.into(), b.into(), c.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_with_spaced_keys() {
        let doc = Json::obj()
            .field("x", 7u32)
            .field("name", "sp2")
            .field("ys", vec![1.5f64, 2.0]);
        let s = doc.to_string_pretty();
        assert!(s.contains("\"x\": 7"), "{s}");
        assert!(s.contains("\"name\": \"sp2\""), "{s}");
        assert!(s.contains("1.5"), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 42.0).unwrap();
        assert_eq!(s, "42");
        s.clear();
        write_num(&mut s, 0.25).unwrap();
        assert_eq!(s, "0.25");
        s.clear();
        write_num(&mut s, f64::NAN).unwrap();
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_specials() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::obj().to_string_pretty(), "{}");
        assert_eq!(Json::Null.to_string_pretty(), "null");
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::obj()
            .field("series", vec![1.0f64, 2.0])
            .field("label", "gflops");
        assert_eq!(doc.get("label").and_then(Json::as_str), Some("gflops"));
        let series = doc.get("series").and_then(Json::as_arr).unwrap();
        assert_eq!(series[1].as_f64(), Some(2.0));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("label").unwrap().as_f64().is_none());
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj()
            .field("label", "quote \" slash \\ line\nend")
            .field("series", vec![1.5f64, 2.0, 0.25])
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .field("nested", Json::obj().field("k", 7u32));
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed, doc);
        assert!(parsed.bits_eq(&doc));
    }

    #[test]
    fn non_finite_renders_null_and_round_trips() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            write_num(&mut s, v).unwrap();
            assert_eq!(s, "null", "non-finite {v} must render as null");
        }
        let doc = Json::obj().field("bad", f64::NAN);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(parsed.get("bad"), Some(&Json::Null));
    }

    #[test]
    fn negative_zero_renders_unsigned_and_round_trips() {
        let mut s = String::new();
        write_num(&mut s, -0.0).unwrap();
        assert_eq!(s, "0", "-0.0 must render without a sign");
        let doc = Json::obj().field("z", -0.0f64);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let z = parsed.get("z").and_then(Json::as_f64).unwrap();
        assert_eq!(z.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "\"open", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = Json::parse("{\"a\": 1} trailing").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let parsed = Json::parse(r#"{"s": "aA\n", "n": -2.5e2}"#).unwrap();
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some("aA\n"));
        assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(-250.0));
    }

    #[test]
    fn bits_eq_is_stricter_than_partial_eq() {
        let pos = Json::Num(0.0);
        let neg = Json::Num(-0.0);
        assert_eq!(pos, neg, "IEEE equality treats signed zeros alike");
        assert!(!pos.bits_eq(&neg), "bits_eq must distinguish them");
        let nan = Json::Num(f64::NAN);
        assert_ne!(nan, nan.clone(), "IEEE NaN is never ==");
        assert!(
            nan.bits_eq(&nan.clone()),
            "bits_eq treats same NaN as equal"
        );
    }

    #[test]
    fn streaming_matches_in_memory_rendering() {
        let doc = Json::obj()
            .field("label", "quote \" line\nend")
            .field("series", vec![1.5f64, 2.0, 0.25])
            .field("nested", Json::obj().field("k", 7u32))
            .field("empty", Json::Arr(vec![]));
        let mut pretty = Vec::new();
        doc.write_to(&mut pretty).unwrap();
        assert_eq!(pretty, doc.to_string_pretty().into_bytes());
        let mut compact = Vec::new();
        doc.write_compact_to(&mut compact).unwrap();
        assert_eq!(compact, doc.to_string_compact().into_bytes());
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let doc = Json::obj()
            .field("a", vec![1u32, 2, 3])
            .field("b", Json::obj().field("x", 0.5f64))
            .field("s", "multi\nline");
        let line = doc.to_string_compact();
        assert!(!line.contains('\n'), "{line}");
        assert!(!line.contains(": "), "compact has no key spacing: {line}");
        let parsed = Json::parse(&line).unwrap();
        assert!(parsed.bits_eq(&doc));
    }

    #[test]
    fn write_to_propagates_io_errors() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let doc = Json::obj().field("k", 1u32);
        let err = doc.write_to(&mut Failing).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn ndjson_writer_emits_one_line_per_doc() {
        let mut w = NdjsonWriter::new(Vec::new());
        w.write_doc(&Json::obj().field("seq", 0u32)).unwrap();
        w.write_doc(&Json::obj().field("seq", 1u32)).unwrap();
        w.write_line(r#"{"seq":2}"#).unwrap();
        assert_eq!(w.lines(), 3);
        let text = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, [r#"{"seq":0}"#, r#"{"seq":1}"#, r#"{"seq":2}"#]);
        assert!(text.ends_with('\n'));
        for line in lines {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn options_and_tuples_convert() {
        let doc = Json::obj()
            .field("peak", Some(3.4f64))
            .field("missing", Option::<f64>::None)
            .field("pair", (16u32, 1.25f64));
        let s = doc.to_string_pretty();
        assert!(s.contains("\"peak\": 3.4"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.contains("\"pair\": ["));
    }
}
