//! Minimal JSON document model for experiment artifacts.
//!
//! Experiments export their datasets as JSON so external tooling can
//! post-process them. The build environment vendors its dependencies, so
//! rather than a full serde_json stand-in this module provides the one
//! thing the repo needs: a value tree plus a deterministic pretty
//! printer. Object keys keep insertion order, which makes artifacts
//! diff-stable across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (experiments have few keys; linear
    /// storage keeps output order deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Starts an empty object.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object. On non-objects the call is a no-op in
    /// release builds (and trips a debug assertion in tests), so a
    /// construction bug degrades an artifact instead of aborting a
    /// campaign that took hours to run.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        } else {
            debug_assert!(false, "field({key:?}) on non-object {self:?}");
        }
        self
    }

    /// Looks a key up in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation, `"key": value` spacing.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the document model; every experiment dataset
/// implements this to drive `export::write_json`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Self {
                Json::Num(v as f64)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Self {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl<A: Into<Json>, B: Into<Json>> From<(A, B)> for Json {
    fn from((a, b): (A, B)) -> Self {
        Json::Arr(vec![a.into(), b.into()])
    }
}

impl<A: Into<Json>, B: Into<Json>, C: Into<Json>> From<(A, B, C)> for Json {
    fn from((a, b, c): (A, B, C)) -> Self {
        Json::Arr(vec![a.into(), b.into(), c.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_with_spaced_keys() {
        let doc = Json::obj()
            .field("x", 7u32)
            .field("name", "sp2")
            .field("ys", vec![1.5f64, 2.0]);
        let s = doc.to_string_pretty();
        assert!(s.contains("\"x\": 7"), "{s}");
        assert!(s.contains("\"name\": \"sp2\""), "{s}");
        assert!(s.contains("1.5"), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 42.0);
        assert_eq!(s, "42");
        s.clear();
        write_num(&mut s, 0.25);
        assert_eq!(s, "0.25");
        s.clear();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_specials() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::obj().to_string_pretty(), "{}");
        assert_eq!(Json::Null.to_string_pretty(), "null");
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::obj()
            .field("series", vec![1.0f64, 2.0])
            .field("label", "gflops");
        assert_eq!(doc.get("label").and_then(Json::as_str), Some("gflops"));
        let series = doc.get("series").and_then(Json::as_arr).unwrap();
        assert_eq!(series[1].as_f64(), Some(2.0));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("label").unwrap().as_f64().is_none());
    }

    #[test]
    fn options_and_tuples_convert() {
        let doc = Json::obj()
            .field("peak", Some(3.4f64))
            .field("missing", Option::<f64>::None)
            .field("pair", (16u32, 1.25f64));
        let s = doc.to_string_pretty();
        assert!(s.contains("\"peak\": 3.4"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.contains("\"pair\": ["));
    }
}
