//! Campaign-engine throughput: days simulated per second, serial vs
//! threaded, plus parallel seed-sharded replications.
//!
//! Criterion's `Throughput::Elements` counts simulated days, so reports
//! read directly as days-simulated/sec. The harness prints the available
//! core count first: on a single-core host the threaded variants measure
//! the engine's coordination overhead, not a speedup — judge scaling
//! claims against the printed core count, and verify equivalence via the
//! determinism tests (`tests/determinism.rs`), which assert serial and
//! parallel campaigns are bit-identical.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp2_cluster::{run_campaign_with_threads, run_replications, ClusterConfig, FaultPlan};
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};

fn bench(c: &mut Criterion) {
    let config = ClusterConfig::default();
    let library = WorkloadLibrary::build(&config.machine, 1998);
    let days = 5u32;
    let mix = JobMix::nas();
    let spec = CampaignSpec {
        days,
        ..Default::default()
    };
    let jobs = trace::generate(&spec, &mix, &library);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("campaign_throughput: {cores} core(s) available; throughput unit = simulated days");

    let mut g = c.benchmark_group("campaign_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(u64::from(days)));
    g.bench_function("serial_1_thread", |b| {
        b.iter(|| run_campaign_with_threads(&config, &library, &jobs, days, 1, &FaultPlan::none()))
    });
    // The same run with the trace layer live: the gap between this and
    // serial_1_thread is the instrumentation overhead, budgeted < 3%
    // (enforced by `benches/overhead.rs`, which CI runs as a gate).
    g.bench_function("serial_1_thread_traced", |b| {
        sp2_trace::set_enabled(true);
        b.iter(|| run_campaign_with_threads(&config, &library, &jobs, days, 1, &FaultPlan::none()));
        sp2_trace::set_enabled(false);
    });
    // And with the flight recorder on top: span events plus interval
    // sampling every daemon sweep, budgeted < 5% (same CI gate). The
    // buffers are cleared between iterations so every pass records the
    // same volume rather than exercising the drop-oldest path.
    g.bench_function("serial_1_thread_recorded", |b| {
        sp2_core::timeline::enable_recording(1);
        b.iter(|| {
            sp2_trace::events::reset();
            sp2_trace::recorder::reset();
            run_campaign_with_threads(&config, &library, &jobs, days, 1, &FaultPlan::none())
        });
        sp2_trace::set_recording(false);
        sp2_trace::set_enabled(false);
        sp2_trace::events::reset();
        sp2_trace::recorder::reset();
    });
    g.bench_function("all_cores", |b| {
        b.iter(|| run_campaign_with_threads(&config, &library, &jobs, days, 0, &FaultPlan::none()))
    });
    g.throughput(Throughput::Elements(4 * u64::from(days)));
    g.bench_function("replications_x4", |b| {
        b.iter(|| run_replications(&config, &library, &mix, &spec, 4, &FaultPlan::none()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
