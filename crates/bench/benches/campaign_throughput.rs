//! Campaign-engine throughput: days simulated per wall second, reference
//! engine vs the batch engine, serial and on an 8-thread pool.
//!
//! Not a criterion bench: this is the perf-trajectory artifact CI tracks
//! (like `BENCH_fastforward.json`). It replays one skewed-mix campaign —
//! wide jobs for plan sharing, single-node stragglers for churn — under
//! four engine configurations, asserts every variant's datasets are
//! bit-identical to the reference, and writes the readings to
//! `BENCH_throughput.json` at the workspace root. Two untimed passes
//! ride along: an instrumented run that measures the cluster-interval
//! fast-forward's elision rate (elided sweeps / total sweeps), and a
//! long-horizon spilling campaign (fault plan on) proving the spill +
//! fast-forward interaction is results-neutral at scale. CI re-runs it
//! at full length with the absolute floor disabled
//! (`SP2_BENCH_MIN_SPEEDUP=0`) and gates on the committed baseline
//! instead: the 8-thread speedup must stay >= 6x and the elision rate
//! >= 0.5.
//!
//! Environment knobs:
//! - `SP2_BENCH_DAYS` — campaign length in days (default 8).
//! - `SP2_BENCH_LONG_DAYS` — long-horizon variant length (default 90).
//! - `SP2_BENCH_MIN_SPEEDUP` — minimum accepted 8-thread batch-over-
//!   reference speedup (default 6.0; the acceptance floor).

use sp2_cluster::{
    metrics as cluster_metrics, run_campaign_cfg, run_campaign_cfg_spill, CampaignResult,
    ClusterConfig, EngineConfig, EngineKind, FaultPlan, SystemSample,
};
use sp2_core::Json;
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};
use std::time::Instant;

/// The equivalence suite's adversarial mix: dominated by wide jobs
/// (maximum plan sharing and drain pressure) and single-node stragglers
/// (maximum activity churn), with most wide jobs oversubscribed.
fn skewed_mix() -> JobMix {
    JobMix {
        node_weights: vec![(1, 20.0), (16, 2.0), (64, 8.0), (128, 10.0)],
        big_job_paging_prob: 0.9,
        short_job_prob: 0.35,
        ..JobMix::nas()
    }
}

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let days: u32 = env_or("SP2_BENCH_DAYS", 8);
    let long_days: u32 = env_or("SP2_BENCH_LONG_DAYS", 90);
    let min_speedup: f64 = env_or("SP2_BENCH_MIN_SPEEDUP", 6.0);
    let config = ClusterConfig::default();
    let library = WorkloadLibrary::build(&config.machine, 1998);
    let mix = skewed_mix();
    let spec = CampaignSpec {
        days,
        seed: 1998,
        ..Default::default()
    };
    let jobs = trace::generate(&spec, &mix, &library);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("campaign_throughput: {days}-day skewed-mix campaign, {cores} core(s) available");

    let variants = [
        ("reference", EngineKind::Reference, 1usize),
        ("reference", EngineKind::Reference, 8),
        ("batch", EngineKind::Batch, 1),
        ("batch", EngineKind::Batch, 8),
    ];
    let mut readings: Vec<(String, f64)> = Vec::new();
    let mut variants_json: Vec<Json> = Vec::new();
    let mut baseline: Option<CampaignResult> = None;
    // Warm-up: one short campaign per engine kind so page-cache, lazy
    // statics, and the signature cache are hot before anything is timed.
    // Without it the first timed variant (the reference) pays the
    // cold-start cost alone and the speedup ratios skew.
    for kind in [EngineKind::Reference, EngineKind::Batch] {
        let warm = EngineConfig::default().engine(kind);
        run_campaign_cfg(
            &config,
            &library,
            &jobs,
            days.min(2),
            &FaultPlan::none(),
            &warm,
        )
        .expect("warm-up campaign runs");
    }

    for (name, kind, threads) in variants {
        let engine = EngineConfig::default().engine(kind).threads(threads);
        let t0 = Instant::now();
        let result = run_campaign_cfg(&config, &library, &jobs, days, &FaultPlan::none(), &engine)
            .expect("campaign runs");
        let seconds = t0.elapsed().as_secs_f64();
        let days_per_s = days as f64 / seconds.max(1e-9);
        let label = format!("{name}/{threads}t");
        println!("{label:<14} {seconds:>8.3}s  {days_per_s:>8.2} days/s");
        match &baseline {
            None => baseline = Some(result),
            Some(reference) => {
                // The engines' contract: bit-identical datasets under
                // every engine kind and thread count.
                assert_eq!(reference.samples, result.samples, "{label}: samples");
                assert_eq!(reference.job_reports, result.job_reports, "{label}: jobs");
                assert_eq!(reference.pbs_records, result.pbs_records, "{label}: pbs");
            }
        }
        variants_json.push(
            Json::obj()
                .field("engine", name)
                .field("threads", threads as u64)
                .field("seconds", seconds)
                .field("days_per_s", days_per_s),
        );
        readings.push((label, days_per_s));
    }

    let rate = |label: &str| {
        readings
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| *r)
            .expect("variant ran")
    };
    let speedup_8t = rate("batch/8t") / rate("reference/8t");
    let speedup_1t = rate("batch/1t") / rate("reference/1t");
    println!("batch speedup: {speedup_1t:.2}x serial, {speedup_8t:.2}x on 8 threads");
    assert!(
        speedup_8t >= min_speedup,
        "8-thread batch engine must be >= {min_speedup}x the reference, got {speedup_8t:.2}x"
    );

    // Elision-rate probe: one untimed instrumented batch run. The
    // sweep counters only record while metric capture is on, so this
    // stays out of the timed variants above (spans cost a little).
    cluster_metrics::reset();
    let probe = EngineConfig::default().threads(8).metrics(true);
    run_campaign_cfg(&config, &library, &jobs, days, &FaultPlan::none(), &probe)
        .expect("probe campaign runs");
    sp2_trace::set_enabled(false);
    let sweeps = cluster_metrics::SWEEPS.get();
    let elided = cluster_metrics::SWEEPS_ELIDED.get();
    let elision_rate = if sweeps > 0 {
        elided as f64 / sweeps as f64
    } else {
        0.0
    };
    println!("elision rate: {elision_rate:.3} ({elided} of {sweeps} sweeps fast-forwarded)");

    // Long-horizon variant: a spilling multi-month campaign with a
    // fault plan, so the gate exercises the spill cap + event-
    // transparent fast-forward interaction, not just the resident
    // 8-day mix. The stepped re-run proves the spilled series is
    // bit-identical with elision on.
    let lh_spec = CampaignSpec {
        days: long_days,
        seed: 1998,
        ..Default::default()
    };
    let lh_jobs = trace::generate(&lh_spec, &mix, &library);
    let lh_faults = FaultPlan::generate(config.nodes, long_days, 0.5, 1998);
    let run_spill = |engine: &EngineConfig| {
        let mut sink: Vec<SystemSample> = Vec::new();
        let t0 = Instant::now();
        run_campaign_cfg_spill(
            &config,
            &library,
            &lh_jobs,
            long_days,
            &lh_faults,
            engine,
            None,
            Some(&mut sink),
        )
        .expect("long-horizon campaign runs");
        (t0.elapsed().as_secs_f64(), sink)
    };
    let (lh_seconds, lh_sink) = run_spill(&EngineConfig::default().threads(8));
    let (lh_stepped_s, stepped_sink) =
        run_spill(&EngineConfig::default().threads(8).fast_forward(false));
    sp2_power2::set_fast_forward_enabled(true);
    assert_eq!(
        lh_sink, stepped_sink,
        "long-horizon: spilled series must be bit-identical with elision on"
    );
    let lh_days_per_s = long_days as f64 / lh_seconds.max(1e-9);
    let lh_speedup = lh_stepped_s / lh_seconds.max(1e-9);
    println!(
        "long-horizon ({long_days} days, faults, spill): {lh_seconds:.3}s, \
         {lh_days_per_s:.2} days/s, {lh_speedup:.2}x over stepping"
    );

    let doc = Json::obj()
        .field("schema", "sp2.bench.throughput.v1")
        .field("days", days)
        .field("mix", "skewed")
        .field("nodes", config.nodes as u64)
        .field("variants", variants_json)
        .field("batch_speedup_1t", speedup_1t)
        .field("batch_speedup_8t", speedup_8t)
        .field("elision_rate", elision_rate)
        .field(
            "long_horizon",
            Json::obj()
                .field("days", long_days)
                .field("seconds", lh_seconds)
                .field("days_per_s", lh_days_per_s)
                .field("speedup_vs_stepping", lh_speedup)
                .field("samples", lh_sink.len() as u64),
        );
    // Land the artifact at the workspace root regardless of the CWD
    // cargo bench hands us (it differs between cargo versions).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");
}
