//! Regenerates Figure 5 (performance vs system intervention) and
//! benchmarks the binned-scatter reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::fig5;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign();
    println!("{}", fig5::run(campaign).render());
    c.bench_function("fig5/analysis", |b| b.iter(|| fig5::run(campaign)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
