//! Regenerates Figure 2 (walltime vs nodes requested) and benchmarks the
//! PBS-accounting histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::fig2;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign();
    println!("{}", fig2::run(campaign).render());
    c.bench_function("fig2/analysis", |b| b.iter(|| fig2::run(campaign)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
