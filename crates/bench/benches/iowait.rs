//! The §7 extension: a campaign under the io-aware counter selection,
//! demonstrating the I/O-wait attribution the paper recommended future
//! sites adopt — and what the selection trade costs (castout visibility).
//! The experiment declares its selection; `Sp2System::campaign_for` runs
//! the campaign under it.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_days;
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_core::Sp2System;

fn bench(c: &mut Criterion) {
    let mut sys = Sp2System::builder().days(bench_days()).build();
    let e = experiment("iowait").expect("registered");
    let campaign = sys.campaign_for(e.selection()).expect("campaign runs");
    println!(
        "{}",
        e.render(ExperimentInput::of(campaign)).expect("renders")
    );
    c.bench_function("iowait/analysis", |b| {
        b.iter(|| e.run(ExperimentInput::of(campaign)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
