//! The §7 extension: a campaign under the io-aware counter selection,
//! demonstrating the I/O-wait attribution the paper recommended future
//! sites adopt — and what the selection trade costs (castout visibility).

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_days;
use sp2_core::experiments::iowait;
use sp2_core::Sp2System;
use sp2_cluster::ClusterConfig;
use sp2_hpm::io_aware_selection;
use sp2_workload::{CampaignSpec, JobMix, WorkloadLibrary};

fn bench(c: &mut Criterion) {
    let config = ClusterConfig {
        selection: io_aware_selection(),
        ..Default::default()
    };
    let library = WorkloadLibrary::build(&config.machine, 1998);
    let clock = config.machine.clock_hz;
    let mut sys = Sp2System::custom(
        config,
        library,
        JobMix::nas(),
        CampaignSpec {
            days: bench_days(),
            ..Default::default()
        },
    );
    let campaign = sys.campaign();
    println!("{}", iowait::run(campaign, clock).render());
    c.bench_function("iowait/analysis", |b| {
        b.iter(|| iowait::run(campaign, clock))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
