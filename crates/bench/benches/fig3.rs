//! Regenerates Figure 3 (per-node performance vs nodes requested) and
//! benchmarks the per-job aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::fig3;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign();
    println!("{}", fig3::run(campaign).render());
    c.bench_function("fig3/analysis", |b| b.iter(|| fig3::run(campaign)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
