//! Benchmarks the two archive codecs on a real campaign's job reports:
//! encode and decode throughput for the RS2HPM text format versus the
//! sp2-archive/v1 columnar container, plus the whole-container
//! write/read path. Keeps the codec cost visible (year-scale campaigns
//! stream through these) and prints the size ratio the columnar format
//! exists for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp2_cluster::{run_campaign, ClusterConfig, FaultPlan};
use sp2_core::archive::{self, ArchiveCodec, ColumnarCodec, TextCodec};
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};

fn bench(c: &mut Criterion) {
    let config = ClusterConfig::default();
    let library = WorkloadLibrary::build(&config.machine, 31);
    let spec = CampaignSpec {
        days: 5,
        seed: 17,
        ..Default::default()
    };
    let jobs = trace::generate(&spec, &JobMix::nas(), &library);
    let campaign = run_campaign(&config, &library, &jobs, spec.days, &FaultPlan::none())
        .expect("campaign runs");
    let selection = &campaign.selection;
    let reports = &campaign.job_reports;

    let text = TextCodec
        .encode_reports(selection, reports)
        .expect("encodes");
    let columnar = ColumnarCodec
        .encode_reports(selection, reports)
        .expect("encodes");
    println!(
        "archive codecs over {} job reports: text {} B, columnar {} B ({:.1}x denser)",
        reports.len(),
        text.len(),
        columnar.len(),
        text.len() as f64 / columnar.len() as f64
    );

    let codecs: [(&str, &dyn ArchiveCodec, &[u8]); 2] = [
        ("text", &TextCodec, &text),
        ("columnar", &ColumnarCodec, &columnar),
    ];
    for (name, codec, bytes) in codecs {
        let group_name = format!("archive/{name}");
        let mut g = c.benchmark_group(&group_name);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function("encode_reports", |b| {
            b.iter(|| codec.encode_reports(selection, reports).expect("encodes"))
        });
        g.bench_function("decode_reports", |b| {
            b.iter(|| codec.decode_reports(selection, bytes).expect("decodes"))
        });
        g.finish();
    }

    // The whole-container path `sp2 archive` / `--archive` ride:
    // samples + reports + PBS records + dataset lines in one file.
    let lines = vec![r#"{"event":"dataset","seq":0,"doc":{"mflops":66.1}}"#.to_string()];
    let container = archive::write_campaign_archive(Vec::new(), &campaign, &lines).expect("writes");
    let mut g = c.benchmark_group("archive/container");
    g.throughput(Throughput::Bytes(container.len() as u64));
    g.bench_function("write_campaign", |b| {
        b.iter(|| archive::write_campaign_archive(Vec::new(), &campaign, &lines).expect("writes"))
    });
    g.bench_function("read_campaign", |b| {
        b.iter(|| archive::read_archive(&container[..]).expect("reads"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
