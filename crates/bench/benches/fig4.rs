//! Regenerates Figure 4 (16-node performance histories) through the
//! experiment registry and benchmarks the history extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_core::Json;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign().expect("campaign runs");
    let e = experiment("fig4").expect("registered");
    let d = e.run(ExperimentInput::of(campaign)).expect("runs");
    let stat = |key: &str| d.json.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let jobs = d
        .json
        .get("points")
        .and_then(Json::as_arr)
        .map_or(0, |p| p.len());
    println!(
        "Figure 4: {} 16-node jobs, mean {:.0} Mflops, std {:.0}, trend {:+.3}/job",
        jobs,
        stat("mean"),
        stat("std"),
        stat("trend_mflops_per_job")
    );
    c.bench_function("fig4/analysis", |b| {
        b.iter(|| e.run(ExperimentInput::of(campaign)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
