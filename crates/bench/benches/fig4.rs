//! Regenerates Figure 4 (16-node performance histories) and benchmarks
//! the history extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::fig4;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign();
    let f = fig4::run(campaign);
    println!(
        "Figure 4: {} 16-node jobs, mean {:.0} Mflops, std {:.0}, trend {:+.3}/job",
        f.points.len(),
        f.mean,
        f.std,
        f.trend_mflops_per_job
    );
    c.bench_function("fig4/analysis", |b| b.iter(|| fig4::run(campaign)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
