//! Regenerates Table 1 (the NAS counter selection) through the
//! experiment registry and benchmarks the selection validation path.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_cluster::CampaignResult;
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_hpm::nas_selection;
use sp2_power2::MachineConfig;

fn bench(c: &mut Criterion) {
    let e = experiment("table1").expect("registered");
    // Table 1 is campaign-independent.
    let empty = CampaignResult::empty(MachineConfig::nas_sp2(), nas_selection());
    println!(
        "{}",
        e.render(ExperimentInput::of(&empty)).expect("renders")
    );
    c.bench_function("table1/regenerate", |b| {
        b.iter(|| e.run(ExperimentInput::of(&empty)))
    });
    c.bench_function("table1/selection_build", |b| b.iter(sp2_hpm::nas_selection));
}

criterion_group!(benches, bench);
criterion_main!(benches);
