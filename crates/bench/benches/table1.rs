//! Regenerates Table 1 (the NAS counter selection) and benchmarks the
//! selection validation path.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_core::experiments::table1;

fn bench(c: &mut Criterion) {
    let t = table1::run();
    println!("{}", t.render());
    c.bench_function("table1/regenerate", |b| b.iter(table1::run));
    c.bench_function("table1/selection_build", |b| {
        b.iter(sp2_hpm::nas_selection)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
