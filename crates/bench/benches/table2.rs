//! Regenerates Table 2 (Mips/Mops/Mflops over the good-day subset)
//! through the experiment registry and benchmarks the daily-rate
//! aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::{experiment, ExperimentInput};

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign().expect("campaign runs");
    let e = experiment("table2").expect("registered");
    println!(
        "{}",
        e.render(ExperimentInput::of(campaign)).expect("renders")
    );
    c.bench_function("table2/analysis", |b| {
        b.iter(|| e.run(ExperimentInput::of(campaign)))
    });
    c.bench_function("table2/daily_node_rates", |b| {
        b.iter(|| campaign.daily_node_rates())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
