//! Regenerates Table 2 (Mips/Mops/Mflops over the good-day subset) from
//! a campaign and benchmarks the daily-rate aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::table2;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign();
    println!("{}", table2::run(campaign).render());
    c.bench_function("table2/analysis", |b| b.iter(|| table2::run(campaign)));
    c.bench_function("table2/daily_node_rates", |b| {
        b.iter(|| campaign.daily_node_rates())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
