//! Regenerates Table 3 (the full per-unit rate breakdown) and benchmarks
//! its aggregation over the campaign samples.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::table3;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign();
    println!("{}", table3::run(campaign).render());
    c.bench_function("table3/analysis", |b| b.iter(|| table3::run(campaign)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
