//! Regenerates Table 3 (the full per-unit rate breakdown) through the
//! experiment registry and benchmarks its aggregation over the campaign
//! samples.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::{experiment, ExperimentInput};

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign().expect("campaign runs");
    let e = experiment("table3").expect("registered");
    println!(
        "{}",
        e.render(ExperimentInput::of(campaign)).expect("renders")
    );
    c.bench_function("table3/analysis", |b| {
        b.iter(|| e.run(ExperimentInput::of(campaign)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
