//! A/B harness for the steady-state fast-forward engine.
//!
//! Not a criterion bench: this is the perf-trajectory artifact CI tracks.
//! It times the cycle-by-cycle reference against the fast-forward path on
//! the long kernels the engine targets, re-measures the workload library
//! and a short campaign both ways, verifies bit-identity on every pair,
//! and writes the readings to `BENCH_fastforward.json` in the working
//! directory.

use sp2_core::Json;
use sp2_power2::{
    set_fast_forward_enabled, Detail, FastForward, KernelRun, MachineConfig, Node, SignatureCache,
};
use sp2_workload::{
    blocked_matmul_kernel, seqaccess_kernel, trace, CampaignSpec, JobMix, WorkloadLibrary,
};
use std::time::Instant;

fn main() {
    let machine = MachineConfig::nas_sp2();
    let mut kernels_json: Vec<Json> = Vec::new();

    for kernel in [
        blocked_matmul_kernel(2_000_000),
        seqaccess_kernel(2_000_000),
    ] {
        let t0 = Instant::now();
        let full = Node::with_seed(machine, 1)
            .run_kernel(KernelRun::new(&kernel).fast_forward(FastForward::Off))
            .stats;
        let full_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let reported = Node::with_seed(machine, 1).run_kernel(
            KernelRun::new(&kernel)
                .fast_forward(FastForward::On)
                .detail(Detail::Full),
        );
        let report = reported.fast_forward.unwrap_or_default();
        let fast = reported.stats;
        let fast_s = t0.elapsed().as_secs_f64();

        assert_eq!(
            full, fast,
            "{}: fast-forward must be bit-identical",
            kernel.name
        );
        let speedup = full_s / fast_s.max(1e-9);
        println!(
            "{:<24} full {:>8.3}s  fast-forward {:>8.3}s  speedup {:>7.1}x  extrapolated {:>5.1}%",
            kernel.name,
            full_s,
            fast_s,
            speedup,
            report.extrapolated_fraction() * 100.0
        );
        kernels_json.push(
            Json::obj()
                .field("kernel", kernel.name.as_str())
                .field("iters", kernel.iters)
                .field("full_s", full_s)
                .field("fast_forward_s", fast_s)
                .field("speedup", speedup)
                .field("detected", report.detected())
                .field("period", report.period)
                .field("detected_at_iter", report.detected_at_iter)
                .field("extrapolated_fraction", report.extrapolated_fraction()),
        );
    }

    // Campaign-scale A/B: the measurement phase (workload library +
    // handler signatures) plus a short serial campaign, with the global
    // switch toggled and the signature cache cleared between phases so
    // both sides actually simulate.
    let config = sp2_cluster::ClusterConfig::default();
    let days = 2u32;
    let mix = JobMix::nas();
    let spec = CampaignSpec {
        days,
        ..Default::default()
    };

    let campaign = |label: &str, enabled: bool| {
        SignatureCache::global().clear();
        set_fast_forward_enabled(enabled);
        // Measurement phase: every kernel signature the campaign needs
        // (workload library + handler/daemon kernels) — where the
        // fast-forward actually runs.
        let t0 = Instant::now();
        let library = WorkloadLibrary::build(&config.machine, 1998);
        let measure_s = t0.elapsed().as_secs_f64();
        // Event phase: replays the cached signatures; fast-forward
        // can't help here, so this stays flat across the A/B.
        let jobs = trace::generate(&spec, &mix, &library);
        let t0 = Instant::now();
        let result = sp2_cluster::run_campaign_with_threads(
            &config,
            &library,
            &jobs,
            days,
            1,
            &sp2_cluster::FaultPlan::none(),
        )
        .expect("campaign runs");
        let campaign_s = t0.elapsed().as_secs_f64();
        println!("{label:<12} measurement {measure_s:>8.3}s  campaign {campaign_s:>8.3}s");
        (measure_s, campaign_s, result)
    };

    let (measure_full_s, campaign_full_s, full_result) = campaign("full", false);
    let (measure_fast_s, campaign_fast_s, fast_result) = campaign("fast-forward", true);
    set_fast_forward_enabled(true);
    assert_eq!(
        full_result.job_reports, fast_result.job_reports,
        "campaign datasets must be bit-identical under fast-forward"
    );

    let doc = Json::obj()
        .field("schema", "sp2.bench.fastforward.v1")
        .field("kernels", kernels_json)
        .field("campaign_days", days)
        .field("measurement_full_s", measure_full_s)
        .field("measurement_fast_forward_s", measure_fast_s)
        .field(
            "measurement_speedup",
            measure_full_s / measure_fast_s.max(1e-9),
        )
        .field("campaign_full_s", campaign_full_s)
        .field("campaign_fast_forward_s", campaign_fast_s);
    // Land the artifact at the workspace root regardless of the CWD
    // cargo bench hands us (it differs between cargo versions).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fastforward.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_fastforward.json");
    println!("wrote BENCH_fastforward.json");
}
