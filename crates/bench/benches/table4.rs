//! Regenerates Table 4 (hierarchical memory performance) through the
//! experiment registry — the workload column from the campaign, the
//! reference columns from direct kernel measurement — and benchmarks the
//! reference-kernel simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_power2::measure_on_fresh_node;
use sp2_workload::seqaccess_kernel;

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let machine = sys.config().machine;
    let campaign = sys.campaign().expect("campaign runs");
    let e = experiment("table4").expect("registered");
    println!(
        "{}",
        e.render(ExperimentInput::of(campaign)).expect("renders")
    );
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| e.run(ExperimentInput::of(campaign))));
    g.bench_function("seqaccess_measurement", |b| {
        b.iter(|| measure_on_fresh_node(&seqaccess_kernel(50_000), &machine, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
