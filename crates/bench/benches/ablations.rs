//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. FPU0-first dispatch vs round-robin (the 1.7 asymmetry's origin);
//! 2. blocked vs naive matmul (the 240 Mflops blocking win);
//! 3. TLB penalty: uniform 36–54 vs fixed 45 cycles;
//! 4. cache line size: 256 B vs 128 B lines;
//! 5. divide-count erratum present vs repaired;
//! 6. paging model on vs off (Figure 5 exists only with it on);
//! 7. PBS drain threshold 64 vs none (Figure 2's >64-node starvation);
//! 8. write-back vs write-through D-cache (Table 1's `dcache_store`
//!    castout semantics exist only under write-back).
//!
//! Each ablation prints its comparison, then Criterion measures the
//! underlying simulation path.

use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use sp2_cluster::{run_campaign, ClusterConfig, FaultPlan, PagingModel};
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_core::Json;
use sp2_hpm::{nas_selection, EventSet, Hpm, Mode, Signal};
use sp2_power2::{FpuDispatch, MachineConfig, Node, WritePolicy};
use sp2_workload::{
    blocked_matmul_kernel, cfd_kernel, naive_matmul_kernel, trace, CampaignSpec, CfdKernelParams,
    JobMix, WorkloadLibrary,
};

fn kernel_mflops(machine: &MachineConfig, kernel: &sp2_isa::Kernel) -> f64 {
    let mut node = Node::with_seed(*machine, 11);
    let stats = node.run_kernel(kernel);
    stats.mflops(machine)
}

fn fpu_ratio(machine: &MachineConfig, kernel: &sp2_isa::Kernel) -> f64 {
    let mut node = Node::with_seed(*machine, 11);
    let stats = node.run_kernel(kernel);
    stats.events.get(Signal::Fpu0Exec) as f64 / stats.events.get(Signal::Fpu1Exec).max(1) as f64
}

fn print_microarch_ablations() {
    let base = MachineConfig::nas_sp2();
    let cfd = cfd_kernel("ablate-cfd", &CfdKernelParams::default(), 20_000);

    // 1. FPU dispatch policy.
    let mut rr = base;
    rr.fpu_dispatch = FpuDispatch::RoundRobin;
    println!(
        "[ablation 1] FPU0/FPU1 instruction ratio: fpu0-first {:.2} vs round-robin {:.2} (paper observes 1.7)",
        fpu_ratio(&base, &cfd),
        fpu_ratio(&rr, &cfd)
    );

    // 2. Blocked vs naive matmul.
    println!(
        "[ablation 2] matmul Mflops: blocked {:.0} vs naive {:.0} (the blocking win behind the 240 Mflops anchor)",
        kernel_mflops(&base, &blocked_matmul_kernel(20_000)),
        kernel_mflops(&base, &naive_matmul_kernel(20_000))
    );

    // 3. TLB penalty model.
    let mut fixed = base;
    fixed.tlb_penalty_min = 45;
    fixed.tlb_penalty_max = 45;
    println!(
        "[ablation 3] CFD Mflops: TLB penalty uniform 36-54 {:.2} vs fixed 45 {:.2}",
        kernel_mflops(&base, &cfd),
        kernel_mflops(&fixed, &cfd)
    );

    // 4. Cache line size.
    let mut thin = base;
    thin.dcache.line_bytes = 128;
    println!(
        "[ablation 4] CFD Mflops: 256 B lines {:.2} vs 128 B lines {:.2} (more misses per sweep)",
        kernel_mflops(&base, &cfd),
        kernel_mflops(&thin, &cfd)
    );

    // 5. Divide erratum.
    let mut events = EventSet::new();
    events.bump(Signal::Fpu0Div, 1_000_000);
    events.bump(Signal::Fpu0Add, 1_000_000);
    let mut with_bug = Hpm::new(nas_selection());
    let mut repaired = Hpm::new_without_erratum(nas_selection());
    with_bug.absorb(&events, Mode::User);
    repaired.absorb(&events, Mode::User);
    let slot = nas_selection().slot_of(Signal::Fpu0Div).unwrap();
    println!(
        "[ablation 5] divide counts seen by software: erratum {} vs repaired {} (paper: div row reads 0.0)",
        with_bug.snapshot().user[slot],
        repaired.snapshot().user[slot]
    );
}

fn print_write_policy_ablation() {
    let base = MachineConfig::nas_sp2();
    let mut wt = base;
    wt.dcache_policy = WritePolicy::WriteThrough;
    let cfd = cfd_kernel("ablate-wt", &CfdKernelParams::default(), 20_000);
    let store_rate = |m: &MachineConfig| {
        let mut n = Node::with_seed(*m, 11);
        let stats = n.run_kernel(&cfd);
        stats.events.get(Signal::DcacheStore) as f64 / stats.instructions as f64
    };
    println!(
        "[ablation 8] dcache_store events per instruction: write-back {:.4} (castouts) vs write-through {:.4} (every store)",
        store_rate(&base),
        store_rate(&wt)
    );
}

fn print_cluster_ablations() {
    let library = WorkloadLibrary::build(&MachineConfig::nas_sp2(), 1998);
    let spec = CampaignSpec {
        days: 20,
        ..Default::default()
    };
    let jobs = trace::generate(&spec, &JobMix::nas(), &library);

    // 6. Paging on/off and 7. drain threshold — run the three campaign
    // variants in parallel.
    let no_paging = ClusterConfig {
        paging: PagingModel {
            sys_slope: 0.0,
            io_slope: 0.0,
            ..PagingModel::default()
        },
        ..Default::default()
    };
    let no_drain = ClusterConfig {
        drain_threshold: 144,
        ..Default::default()
    };

    let configs = [ClusterConfig::default(), no_paging, no_drain];
    let results: Vec<_> = configs
        .par_iter()
        .map(|cfg| {
            run_campaign(cfg, &library, &jobs, spec.days, &FaultPlan::none())
                .expect("campaign runs")
        })
        .collect();

    let stat = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let fig5 = experiment("fig5").expect("registered");
    let f5_base = fig5
        .to_json(ExperimentInput::of(&results[0]))
        .expect("runs");
    let f5_off = fig5
        .to_json(ExperimentInput::of(&results[1]))
        .expect("runs");
    println!(
        "[ablation 6] Figure-5 correlation: paging on {:.2} (jobs sys>user: {:.0}) vs off {:.2} ({:.0}) — the collapse needs the paging model",
        stat(&f5_base, "correlation"),
        stat(&f5_base, "paging_suspected"),
        stat(&f5_off, "correlation"),
        stat(&f5_off, "paging_suspected")
    );

    let fig2 = experiment("fig2").expect("registered");
    let f2_base = fig2
        .to_json(ExperimentInput::of(&results[0]))
        .expect("runs");
    let f2_nodrain = fig2
        .to_json(ExperimentInput::of(&results[2]))
        .expect("runs");
    println!(
        "[ablation 7] walltime fraction above 64 nodes: drain@64 {:.3} vs no drain {:.3}",
        stat(&f2_base, "fraction_above_64"),
        stat(&f2_nodrain, "fraction_above_64")
    );
}

fn bench(c: &mut Criterion) {
    print_microarch_ablations();
    print_write_policy_ablation();
    print_cluster_ablations();

    let base = MachineConfig::nas_sp2();
    let mut rr = base;
    rr.fpu_dispatch = FpuDispatch::RoundRobin;
    let cfd = cfd_kernel("bench-ablate", &CfdKernelParams::default(), 5_000);
    let mut g = c.benchmark_group("ablations");
    g.bench_function("cfd_fpu0_first", |b| {
        b.iter(|| Node::with_seed(base, 1).run_kernel(&cfd))
    });
    g.bench_function("cfd_round_robin", |b| {
        b.iter(|| Node::with_seed(rr, 1).run_kernel(&cfd))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
