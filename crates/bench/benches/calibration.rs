//! Regenerates the §5 calibration points (240 Mflops blocked matmul,
//! workload kernel, BT, sequential access) through the experiment
//! registry and benchmarks the node simulator itself on the two
//! extremes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp2_cluster::CampaignResult;
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_hpm::nas_selection;
use sp2_power2::{FastForward, KernelRun, MachineConfig, Node};
use sp2_workload::{blocked_matmul_kernel, cfd_kernel, CfdKernelParams};

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::nas_sp2();
    let e = experiment("calibration").expect("registered");
    // Calibration measures reference kernels directly — no campaign.
    let empty = CampaignResult::empty(machine, nas_selection());
    println!(
        "{}",
        e.render(ExperimentInput::of(&empty)).expect("renders")
    );

    let mm = blocked_matmul_kernel(10_000);
    let cfd = cfd_kernel("bench-cfd", &CfdKernelParams::default(), 10_000);
    let mut g = c.benchmark_group("node-simulator");
    g.throughput(Throughput::Elements(mm.dynamic_instructions()));
    g.bench_function("blocked_matmul_10k_iters", |b| {
        b.iter(|| Node::with_seed(machine, 1).run_kernel(&mm))
    });
    g.throughput(Throughput::Elements(cfd.dynamic_instructions()));
    g.bench_function("cfd_kernel_10k_iters", |b| {
        b.iter(|| Node::with_seed(machine, 1).run_kernel(&cfd))
    });
    g.finish();

    // Long streaming/tiled kernels: the steady-state fast-forward's home
    // turf. `run_kernel` (fast-forward on) vs `FastForward::Off`
    // (cycle-by-cycle) on the same 2M-iteration kernel — the ≥10×
    // headline speedup lives in the ratio of these two.
    let long_mm = blocked_matmul_kernel(2_000_000);
    let mut g = c.benchmark_group("node-simulator-long");
    g.sample_size(10);
    g.throughput(Throughput::Elements(long_mm.dynamic_instructions()));
    g.bench_function("blocked_matmul_2m_iters_fast_forward", |b| {
        b.iter(|| Node::with_seed(machine, 1).run_kernel(&long_mm))
    });
    g.bench_function("blocked_matmul_2m_iters_full", |b| {
        b.iter(|| {
            Node::with_seed(machine, 1)
                .run_kernel(KernelRun::new(&long_mm).fast_forward(FastForward::Off))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
