//! Regenerates Figure 1 (system performance history) through the
//! experiment registry and benchmarks the daily aggregation plus a short
//! end-to-end campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use sp2_bench::bench_system;
use sp2_cluster::{run_campaign, ClusterConfig, FaultPlan};
use sp2_core::experiments::{experiment, ExperimentInput};
use sp2_core::Json;
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};

fn bench(c: &mut Criterion) {
    let mut sys = bench_system();
    let campaign = sys.campaign().expect("campaign runs");
    let e = experiment("fig1").expect("registered");
    let d = e.run(ExperimentInput::of(campaign)).expect("runs");
    let stat = |key: &str| d.json.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
    println!(
        "Figure 1: mean {:.2} Gflops, util {:.0}%, max day {:.2}, max 15-min {:.2}",
        stat("mean_gflops"),
        stat("mean_utilization") * 100.0,
        stat("max_daily_gflops"),
        stat("max_15min_gflops")
    );
    c.bench_function("fig1/analysis", |b| {
        b.iter(|| e.run(ExperimentInput::of(campaign)))
    });

    // End-to-end: a 3-day campaign through PBS + daemon + paging.
    let config = ClusterConfig::default();
    let library = WorkloadLibrary::build(&config.machine, 1998);
    let spec = CampaignSpec {
        days: 3,
        ..Default::default()
    };
    let jobs = trace::generate(&spec, &JobMix::nas(), &library);
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("campaign_3day", |b| {
        b.iter(|| run_campaign(&config, &library, &jobs, spec.days, &FaultPlan::none()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
