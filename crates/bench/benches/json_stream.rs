//! Benchmarks the two JSON render paths the artifact writers choose
//! between: building the full `String` in memory (`to_string_pretty` /
//! `to_string_compact`) versus streaming straight into an `io::Write`
//! sink (`write_to` / the NDJSON writer). The streamed path is what
//! `--metrics`, `--trace-out`, and the `sp2 serve` result store ride;
//! this keeps its cost visible next to the in-memory baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp2_core::{Json, NdjsonWriter};

/// A metrics-dump-shaped document: an object of `n` arrays of small
/// objects — nesting and string escaping both get exercised.
fn fixture(n: usize) -> Json {
    let mut doc = Json::obj().field("schema", "sp2-bench/json-stream");
    for group in 0..n {
        let rows: Vec<Json> = (0..16)
            .map(|i| {
                Json::obj()
                    .field("name", format!("group{group}.metric{i}"))
                    .field("value", (group * 31 + i) as f64 * 0.125)
                    .field("count", (i * 7) as u64)
            })
            .collect();
        doc = doc.field(&format!("group{group}"), Json::Arr(rows));
    }
    doc
}

fn bench(c: &mut Criterion) {
    let doc = fixture(64);
    let bytes = doc.to_string_pretty().len() as u64;

    let mut g = c.benchmark_group("json_stream");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("render/pretty_string", |b| {
        b.iter(|| doc.to_string_pretty())
    });
    g.bench_function("render/compact_string", |b| {
        b.iter(|| doc.to_string_compact())
    });
    g.bench_function("stream/pretty_write_to", |b| {
        b.iter(|| {
            let mut sink = Vec::with_capacity(bytes as usize);
            doc.write_to(&mut sink).expect("vec sink never fails");
            sink
        })
    });
    g.bench_function("stream/compact_write_to", |b| {
        b.iter(|| {
            let mut sink = Vec::with_capacity(bytes as usize);
            doc.write_compact_to(&mut sink)
                .expect("vec sink never fails");
            sink
        })
    });
    g.finish();

    // The serve streaming shape: many small documents, one per line.
    let line_docs: Vec<Json> = (0..256)
        .map(|i| {
            Json::obj()
                .field("event", "dataset")
                .field("seq", i as u64)
                .field("doc", fixture(1))
        })
        .collect();
    c.bench_function("json_stream/ndjson_256_docs", |b| {
        b.iter(|| {
            let mut w = NdjsonWriter::new(Vec::new());
            for d in &line_docs {
                w.write_doc(d).expect("vec sink never fails");
            }
            w.into_inner()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
