//! CI gate for the self-metering overhead budgets.
//!
//! Not a criterion bench: this harness times the same serial campaign
//! three ways — uninstrumented, with the trace layer live, and with the
//! full flight recorder (span events + interval sampling every daemon
//! sweep) — asserts the budgets the trace layer promises
//! (`serial_1_thread_traced` < 3% over baseline, recorder < 5%), and
//! writes the readings to `BENCH_overhead.json` in the workspace root.
//! A budget violation fails the process, which fails CI.
//!
//! The variants are interleaved round-robin and each takes its best
//! rep: CPU frequency drift on a busy host then degrades every variant
//! alike instead of charging one variant for a slow stretch, and the
//! per-variant minimum is the cost floor the budget actually bounds.

use sp2_cluster::{run_campaign_with_threads, ClusterConfig, FaultPlan};
use sp2_core::Json;
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};
use std::time::Instant;

/// Campaign length per timed run — long enough that the per-sweep
/// recording cost dominates fixed setup, so the ratio is stable.
const DAYS: u32 = 14;
/// Interleaved rounds; each variant keeps its best rep.
const ROUNDS: usize = 7;
/// `serial_1_thread_traced` budget over baseline.
const TRACED_BUDGET: f64 = 0.03;
/// Flight-recorder budget over baseline.
const RECORDED_BUDGET: f64 = 0.05;

#[derive(Clone, Copy)]
enum Mode {
    Baseline,
    Traced,
    Recorded,
}

impl Mode {
    fn arm(self) {
        match self {
            Mode::Baseline => {
                sp2_trace::set_recording(false);
                sp2_trace::set_enabled(false);
            }
            Mode::Traced => {
                sp2_trace::set_recording(false);
                sp2_trace::set_enabled(true);
            }
            Mode::Recorded => sp2_core::timeline::enable_recording(1),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Traced => "traced",
            Mode::Recorded => "recorded",
        }
    }
}

fn main() {
    let config = ClusterConfig::default();
    let library = WorkloadLibrary::build(&config.machine, 1998);
    let spec = CampaignSpec {
        days: DAYS,
        ..Default::default()
    };
    let jobs = trace::generate(&spec, &JobMix::nas(), &library);

    let run_once = |mode: Mode| -> f64 {
        // Clear the buffers so every pass records the same volume
        // instead of exercising the drop-oldest path (reset keeps the
        // collector installed and restores the every-sweep cadence).
        sp2_trace::events::reset();
        sp2_trace::recorder::reset();
        mode.arm();
        let t0 = Instant::now();
        let r = run_campaign_with_threads(&config, &library, &jobs, DAYS, 1, &FaultPlan::none())
            .expect("campaign runs");
        let s = t0.elapsed().as_secs_f64();
        assert!(!r.job_reports.is_empty(), "campaign must do real work");
        s
    };

    // Warm-up: populate the signature cache and fault the code paths in
    // before anything is timed.
    run_once(Mode::Recorded);

    let modes = [Mode::Baseline, Mode::Traced, Mode::Recorded];
    let mut best = [f64::INFINITY; 3];
    for round in 0..ROUNDS {
        for (i, &mode) in modes.iter().enumerate() {
            let s = run_once(mode);
            best[i] = best[i].min(s);
            println!("round {} {:<9} {s:>7.3}s", round + 1, mode.label());
        }
    }
    sp2_trace::set_recording(false);
    sp2_trace::set_enabled(false);
    sp2_trace::events::reset();
    sp2_trace::recorder::reset();

    let [baseline_s, traced_s, recorded_s] = best;
    let traced_overhead = traced_s / baseline_s - 1.0;
    let recorded_overhead = recorded_s / baseline_s - 1.0;
    println!("baseline  best of {ROUNDS}: {baseline_s:>7.3}s");
    println!(
        "traced    best of {ROUNDS}: {traced_s:>7.3}s  overhead {:>6.2}%  (budget {:.0}%)",
        traced_overhead * 100.0,
        TRACED_BUDGET * 100.0
    );
    println!(
        "recorded  best of {ROUNDS}: {recorded_s:>7.3}s  overhead {:>6.2}%  (budget {:.0}%)",
        recorded_overhead * 100.0,
        RECORDED_BUDGET * 100.0
    );

    let doc = Json::obj()
        .field("schema", "sp2.bench.overhead.v1")
        .field("campaign_days", DAYS)
        .field("rounds", ROUNDS as u64)
        .field("baseline_s", baseline_s)
        .field("traced_s", traced_s)
        .field("recorded_s", recorded_s)
        .field("traced_overhead", traced_overhead)
        .field("recorded_overhead", recorded_overhead)
        .field("traced_budget", TRACED_BUDGET)
        .field("recorded_budget", RECORDED_BUDGET);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overhead.json");
    std::fs::write(path, doc.to_string_pretty() + "\n").expect("write BENCH_overhead.json");
    println!("wrote BENCH_overhead.json");

    assert!(
        traced_overhead < TRACED_BUDGET,
        "trace-layer overhead {:.2}% exceeds the {:.0}% budget",
        traced_overhead * 100.0,
        TRACED_BUDGET * 100.0
    );
    assert!(
        recorded_overhead < RECORDED_BUDGET,
        "flight-recorder overhead {:.2}% exceeds the {:.0}% budget",
        recorded_overhead * 100.0,
        RECORDED_BUDGET * 100.0
    );
}
