//! Shared setup for the benchmark harness.
//!
//! Every bench regenerates its table or figure once (printing the same
//! rows/series the paper reports) and then measures the cost of the
//! analysis pass with Criterion. The campaign length is configurable via
//! `SP2_BENCH_DAYS` (default 45 — long enough for stable statistics,
//! short enough for a quick `cargo bench`); set 270 for the paper's full
//! period.

#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
use sp2_core::Sp2System;

/// Campaign length used by the benches.
pub fn bench_days() -> u32 {
    std::env::var("SP2_BENCH_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(45)
}

/// Builds the standard system and runs its campaign eagerly.
pub fn bench_system() -> Sp2System {
    let mut sys = Sp2System::nas_1996(bench_days());
    let _ = sys.campaign();
    sys
}
