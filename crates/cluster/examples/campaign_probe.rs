use sp2_cluster::{run_campaign, ClusterConfig, FaultPlan};
use sp2_workload::{trace, CampaignSpec, JobMix, WorkloadLibrary};

fn main() {
    let t0 = std::time::Instant::now();
    let config = ClusterConfig::default();
    let library = WorkloadLibrary::build(&config.machine, 1998);
    eprintln!("library built in {:?}", t0.elapsed());
    {
        use sp2_workload::ProgramFamily::*;
        for fam in [CfdSolver, NpbBtLike, Optimization, Interactive] {
            let v: Vec<f64> = library
                .family_ids(fam)
                .iter()
                .map(|&id| library.signature_of(id).mflops())
                .collect();
            let m = v.iter().sum::<f64>() / v.len() as f64;
            eprintln!(
                "{fam:?}: n={} mean {:.1} Mflops range {:.1}..{:.1}",
                v.len(),
                m,
                v.iter().cloned().fold(f64::INFINITY, f64::min),
                v.iter().cloned().fold(0.0, f64::max)
            );
        }
    }
    let spec = CampaignSpec::default();
    let jobs = trace::generate(&spec, &JobMix::nas(), &library);
    eprintln!("{} jobs submitted", jobs.len());
    let t1 = std::time::Instant::now();
    let r = match run_campaign(&config, &library, &jobs, spec.days, &FaultPlan::none()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("campaign ran in {:?}", t1.elapsed());

    println!(
        "mean_daily_gflops = {:.2} (paper 1.3)",
        r.mean_daily_gflops()
    );
    println!(
        "mean_utilization  = {:.2} (paper 0.64)",
        r.mean_utilization()
    );
    println!(
        "max_daily_util    = {:.2} (paper 0.95)",
        r.daily_utilization().iter().fold(0.0f64, |a, &b| a.max(b))
    );
    println!(
        "max_daily_gflops  = {:.2} (paper 3.4)",
        r.max_daily_gflops()
    );
    println!(
        "max_15min_gflops  = {:.2} (paper 5.7)",
        r.max_sample_gflops()
    );
    let good = r.days_above(2.0);
    println!("days > 2 Gflops   = {} (paper 30/270)", good.len());
    let rates = r.daily_node_rates();
    if !good.is_empty() {
        let mf: f64 = good.iter().map(|&d| rates[d].mflops).sum::<f64>() / good.len() as f64;
        let mips: f64 = good.iter().map(|&d| rates[d].mips).sum::<f64>() / good.len() as f64;
        let fma: f64 = good
            .iter()
            .map(|&d| rates[d].fma_flop_fraction())
            .sum::<f64>()
            / good.len() as f64;
        let f01: f64 = good
            .iter()
            .map(|&d| rates[d].fpu0_fpu1_ratio())
            .sum::<f64>()
            / good.len() as f64;
        let cm: f64 = good
            .iter()
            .map(|&d| rates[d].cache_miss_ratio())
            .sum::<f64>()
            / good.len() as f64;
        let tm: f64 =
            good.iter().map(|&d| rates[d].tlb_miss_ratio()).sum::<f64>() / good.len() as f64;
        println!("good-day node Mflops = {mf:.1} (paper 17.4), Mips = {mips:.1} (45.7)");
        println!(
            "fma share {fma:.2} (0.54), fpu0/1 {f01:.2} (1.7), cmr {:.2}% (1%), tlb {:.3}% (0.1%)",
            cm * 100.0,
            tm * 100.0
        );
        let dr: f64 = good.iter().map(|&d| rates[d].dma_read).sum::<f64>() / good.len() as f64;
        let dw: f64 = good.iter().map(|&d| rates[d].dma_write).sum::<f64>() / good.len() as f64;
        println!("dma read {dr:.3} M/s (0.024) write {dw:.3} (0.017)");
    }
    println!("batch jobs >600s  = {}", r.batch_reports(600.0).len());
    println!(
        "tw node mflops    = {:.1} (paper 19)",
        r.time_weighted_node_mflops(600.0)
    );
    let recs: Vec<_> = r.pbs_records.clone();
    let h = sp2_pbs::walltime_histogram(&recs, 144, 600.0);
    let top: Vec<_> = h.top_k(3);
    println!(
        "walltime top3 = {:?} (paper 16,32,8)",
        top.iter().map(|(n, _)| *n).collect::<Vec<_>>()
    );
    println!(
        "frac walltime >64 nodes = {:.3} (paper ~0)",
        h.fraction_above(64)
    );
    let batch = r.batch_reports(600.0);
    let mut by_small = (0.0, 0u32);
    let mut by_big = (0.0, 0u32);
    let mut pagers = 0;
    for b in &batch {
        if b.nodes > 64 {
            by_big.0 += b.mflops_per_node();
            by_big.1 += 1;
            if b.paging_suspected() {
                pagers += 1;
            }
        } else {
            by_small.0 += b.mflops_per_node();
            by_small.1 += 1;
        }
    }
    if by_big.1 > 0 {
        println!(
            ">64-node jobs: {} avg {:.1} Mf/node, {} paging-suspected; <=64: avg {:.1}",
            by_big.1,
            by_big.0 / by_big.1 as f64,
            pagers,
            by_small.0 / by_small.1 as f64
        );
    } else {
        println!("no >64-node jobs completed");
    }
    let sixteen: Vec<f64> = batch
        .iter()
        .filter(|b| b.nodes == 16)
        .map(|b| b.job_mflops())
        .collect();
    let m = sixteen.iter().sum::<f64>() / sixteen.len().max(1) as f64;
    let sd = (sixteen.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / sixteen.len().max(1) as f64)
        .sqrt();
    println!(
        "16-node jobs: n={} mean {:.0} Mflops sd {:.0} (paper 320 / 200)",
        sixteen.len(),
        m,
        sd
    );
}
