//! Seeded fault injection: the degraded-machine scenarios the real
//! 9-month trace contained.
//!
//! The paper's daemon sampled "the SP2 nodes which are available for user
//! jobs" — an availability qualifier that only matters because nodes
//! *weren't* always available. This module generates a deterministic
//! [`FaultPlan`] from a single rate knob and a seed:
//!
//! - **node outages** — per-node windows drawn from exponential
//!   MTBF/MTTR distributions; a down node runs no jobs and is skipped by
//!   the daemon, and any job caught on it is killed (and usually
//!   requeued) by PBS;
//! - **missed sweeps** — cron passes that never ran (loaded frontend,
//!   NFS hiccup); the virtualized counters keep counting, so the next
//!   sweep's delta simply covers a longer interval;
//! - **daemon restarts** — the collector loses its in-memory `prev`
//!   snapshots and the next sweep only re-baselines;
//! - **counter glitches** — a single collection read returns the raw
//!   32-bit hardware registers instead of the 64-bit virtualized view,
//!   producing a wrap anomaly the daemon must detect and discard.
//!
//! An empty plan injects nothing and leaves the simulation bit-identical
//! to a fault-free run; a non-empty plan is fully determined by
//! `(nodes, days, rate, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One node-outage window: the node is out of service over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// The failing node.
    pub node: usize,
    /// Failure time, seconds.
    pub start: f64,
    /// Repair time, seconds (may exceed the campaign horizon).
    pub end: f64,
}

/// A deterministic schedule of faults for one campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    outages: Vec<Outage>,
    /// 1-based daemon sweep indices that never run.
    missed_sweeps: HashSet<u64>,
    /// 1-based sweep indices immediately preceded by a daemon restart.
    restart_sweeps: HashSet<u64>,
    /// Glitched reads: sweep index → nodes whose snapshot is truncated
    /// to the 32-bit hardware registers on that sweep.
    glitches: HashMap<u64, Vec<usize>>,
}

/// Mean time between failures per node at `rate = 1.0`, seconds (30 days
/// — roughly one failure per node per month, scaled down by the rate).
const MTBF_BASE_S: f64 = 30.0 * 86_400.0;
/// Mean time to repair, seconds (4 hours).
const MTTR_S: f64 = 4.0 * 3_600.0;
/// Probability a given sweep is missed at `rate = 1.0`.
const MISSED_SWEEP_BASE_P: f64 = 0.02;
/// Expected daemon restarts per campaign day at `rate = 1.0`.
const RESTARTS_PER_DAY_BASE: f64 = 0.2;
/// Expected glitched node-reads per campaign day at `rate = 1.0`.
const GLITCHES_PER_DAY_BASE: f64 = 0.5;

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.missed_sweeps.is_empty()
            && self.restart_sweeps.is_empty()
            && self.glitches.is_empty()
    }

    /// Generates the plan for a `nodes`-node machine over `days` days.
    ///
    /// `rate` scales every fault class together; `0.0` (or a degenerate
    /// machine/horizon) yields the empty plan, `1.0` roughly matches a
    /// troubled production month (one outage per node per month, 2 % of
    /// sweeps missed). The result depends only on the arguments.
    pub fn generate(nodes: usize, days: u32, rate: f64, seed: u64) -> Self {
        if rate <= 0.0 || nodes == 0 || days == 0 {
            return FaultPlan::none();
        }
        let horizon = days as f64 * 86_400.0;
        let sweeps = (horizon / 900.0).floor() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = |rng: &mut StdRng, mean: f64| -> f64 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -mean * u.ln()
        };

        // Outage windows, node by node (deterministic draw order).
        let mtbf = MTBF_BASE_S / rate;
        let mut outages = Vec::new();
        for node in 0..nodes {
            let mut t = exp(&mut rng, mtbf);
            while t < horizon {
                let repair = t + exp(&mut rng, MTTR_S);
                outages.push(Outage {
                    node,
                    start: t,
                    end: repair,
                });
                t = repair + exp(&mut rng, mtbf);
            }
        }

        // Missed cron sweeps.
        let p_missed = (MISSED_SWEEP_BASE_P * rate).min(0.5);
        let mut missed_sweeps = HashSet::new();
        for k in 1..=sweeps {
            if rng.gen_bool(p_missed) {
                missed_sweeps.insert(k);
            }
        }

        // Daemon restarts: each lands before a uniformly-drawn sweep.
        let n_restarts = (RESTARTS_PER_DAY_BASE * rate * days as f64).round() as usize;
        let mut restart_sweeps = HashSet::new();
        for _ in 0..n_restarts {
            restart_sweeps.insert(rng.gen_range(1..=sweeps));
        }

        // Counter glitches: a (sweep, node) pair per draw.
        let n_glitches = (GLITCHES_PER_DAY_BASE * rate * days as f64).round() as usize;
        let mut glitches: HashMap<u64, Vec<usize>> = HashMap::new();
        for _ in 0..n_glitches {
            let sweep = rng.gen_range(1..=sweeps);
            let node = rng.gen_range(0..nodes);
            let nodes_at = glitches.entry(sweep).or_default();
            if !nodes_at.contains(&node) {
                nodes_at.push(node);
            }
        }

        FaultPlan {
            outages,
            missed_sweeps,
            restart_sweeps,
            glitches,
        }
    }

    /// Adds one hand-written outage window (ablations and stress tests;
    /// [`FaultPlan::generate`] is the production path). Windows for the
    /// same node must not overlap — the engine tracks up/down as a
    /// toggle, exactly like the generator's non-overlapping draws.
    pub fn add_outage(&mut self, node: usize, start: f64, end: f64) {
        self.outages.push(Outage { node, start, end });
    }

    /// All outage windows, grouped by node in draw order.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Whether the `k`-th sweep (1-based) never runs.
    pub fn sweep_missed(&self, k: u64) -> bool {
        self.missed_sweeps.contains(&k)
    }

    /// Whether the daemon restarts just before the `k`-th sweep.
    pub fn restart_before_sweep(&self, k: u64) -> bool {
        self.restart_sweeps.contains(&k)
    }

    /// Nodes whose read is glitched (32-bit truncated) on sweep `k`.
    pub fn glitched_nodes(&self, k: u64) -> &[usize] {
        self.glitches.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of missed sweeps in the plan.
    pub fn missed_sweep_count(&self) -> usize {
        self.missed_sweeps.len()
    }

    /// Number of daemon restarts in the plan.
    pub fn restart_count(&self) -> usize {
        self.restart_sweeps.len()
    }

    /// Number of planned glitched node-reads.
    pub fn glitch_count(&self) -> usize {
        self.glitches.values().map(Vec::len).sum()
    }

    /// Total planned node downtime, clipped to the horizon, in seconds.
    pub fn node_downtime_s(&self, horizon: f64) -> f64 {
        self.outages
            .iter()
            .map(|o| (o.end.min(horizon) - o.start.min(horizon)).max(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_empty() {
        assert!(FaultPlan::generate(144, 60, 0.0, 1).is_empty());
        assert!(FaultPlan::generate(144, 0, 1.0, 1).is_empty());
        assert!(FaultPlan::generate(0, 60, 1.0, 1).is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FaultPlan::generate(144, 60, 0.05, 1996);
        let b = FaultPlan::generate(144, 60, 0.05, 1996);
        assert_eq!(a, b);
        let c = FaultPlan::generate(144, 60, 0.05, 1997);
        assert_ne!(a, c, "different seed must shuffle the plan");
    }

    #[test]
    fn moderate_rate_produces_every_fault_class() {
        let p = FaultPlan::generate(144, 60, 1.0, 7);
        assert!(!p.outages().is_empty());
        assert!(p.missed_sweep_count() > 0);
        assert!(p.restart_count() > 0);
        assert!(p.glitch_count() > 0);
        for o in p.outages() {
            assert!(o.end > o.start);
            assert!(o.node < 144);
            assert!(o.start < 60.0 * 86_400.0);
        }
    }

    #[test]
    fn rate_scales_fault_volume() {
        let lo = FaultPlan::generate(144, 120, 0.1, 3);
        let hi = FaultPlan::generate(144, 120, 2.0, 3);
        assert!(hi.outages().len() > lo.outages().len());
        assert!(hi.missed_sweep_count() > lo.missed_sweep_count());
    }

    #[test]
    fn downtime_clips_to_horizon() {
        let mut p = FaultPlan::none();
        p.outages.push(Outage {
            node: 0,
            start: 100.0,
            end: 1_000_000.0,
        });
        assert!((p.node_downtime_s(200.0) - 100.0).abs() < 1e-9);
        assert!((p.node_downtime_s(2_000_000.0) - 999_900.0).abs() < 1e-9);
    }

    #[test]
    fn glitched_nodes_lookup() {
        let p = FaultPlan::generate(144, 60, 1.0, 7);
        let with_glitch: Vec<u64> = (1..=(60 * 96))
            .filter(|&k| !p.glitched_nodes(k).is_empty())
            .collect();
        assert_eq!(
            with_glitch
                .iter()
                .map(|&k| p.glitched_nodes(k).len())
                .sum::<usize>(),
            p.glitch_count()
        );
    }
}
