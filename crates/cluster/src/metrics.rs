//! Self-metering for the campaign engine.
//!
//! The event loop is where campaign minutes go, so it is split into the
//! phases the engine actually alternates between: advancing node
//! counters (the rayon-parallel part), folding daemon samples,
//! scheduling jobs, and handling fault events. `advance_busy_ns`
//! accumulates per-node work inside the parallel region, so
//! `advance_busy_ns / (advance wall × workers)` reads as rayon worker
//! utilization.

use sp2_trace::{Counter, Gauge, MetricValue, MetricsSnapshot, Timer};

/// Whole [`crate::run_campaign`] invocations, wall time per campaign.
pub static CAMPAIGN: Timer = Timer::new("cluster.campaign");

/// Events popped off the simulation heap.
pub static EVENTS: Counter = Counter::new("cluster.events");

/// Simulated seconds covered by completed campaigns.
pub static SIMULATED_S: Counter = Counter::new("cluster.simulated_seconds");

/// Sweeps delivered to the daemon, stepped or replayed.
pub static SWEEPS: Counter = Counter::new("cluster.sweeps");

/// Sweeps satisfied by cluster-interval fast-forward instead of
/// stepping (`sweeps_elided / sweeps` is the campaign's elision rate).
pub static SWEEPS_ELIDED: Counter = Counter::new("cluster.sweeps_elided");

/// Wall time of the parallel per-node advance in each sampling pass.
pub static ADVANCE: Timer = Timer::new("cluster.phase.advance");

/// Summed per-node busy time inside the parallel advance (compare
/// against `cluster.phase.advance` wall × worker count).
pub static ADVANCE_BUSY_NS: Counter = Counter::new("cluster.advance_busy_ns");

/// Wall time of snapshot assembly + daemon folding per sampling pass.
pub static SAMPLE: Timer = Timer::new("cluster.phase.sample");

/// Wall time of PBS scheduling passes (job starts).
pub static SCHEDULE: Timer = Timer::new("cluster.phase.schedule");

/// Wall time of fault handling (node-down/node-up events).
pub static FAULT_SWEEP: Timer = Timer::new("cluster.phase.faults");

/// Rayon workers available to the engine when the campaign started.
pub static RAYON_THREADS: Gauge = Gauge::new("cluster.rayon_threads");

/// Wall time spent planning counter-group pass sequences.
pub static PLAN: Timer = Timer::new("cluster.phase.plan");

/// Wall time of rotated-campaign passes (one span per planned pass).
pub static ROTATE: Timer = Timer::new("cluster.phase.rotate");

/// Passes executed by rotated campaigns.
pub static ROTATE_PASSES: Counter = Counter::new("cluster.rotate_passes");

/// Latest sweep's dispatch-bound fraction of cycles, in percent.
pub static TOPLEV_DISPATCH: Gauge = Gauge::new("cluster.toplev.dispatch");

/// Latest sweep's FPU-bound fraction of cycles, in percent.
pub static TOPLEV_FPU: Gauge = Gauge::new("cluster.toplev.fpu");

/// Latest sweep's D-cache/TLB-stall fraction of cycles, in percent.
pub static TOPLEV_DCACHE_TLB: Gauge = Gauge::new("cluster.toplev.dcache_tlb");

/// Latest sweep's I-cache-stall fraction of cycles, in percent.
pub static TOPLEV_ICACHE: Gauge = Gauge::new("cluster.toplev.icache");

/// Latest sweep's I/O-wait fraction of cycles, in percent.
pub static TOPLEV_IO_WAIT: Gauge = Gauge::new("cluster.toplev.io_wait");

/// Appends the engine's readings — including derived worker utilization
/// and simulated-seconds-per-wall-second throughput — to `snap`.
pub fn collect(snap: &mut MetricsSnapshot) {
    CAMPAIGN.observe(snap);
    EVENTS.observe(snap);
    SIMULATED_S.observe(snap);
    SWEEPS.observe(snap);
    SWEEPS_ELIDED.observe(snap);
    ADVANCE.observe(snap);
    ADVANCE_BUSY_NS.observe(snap);
    SAMPLE.observe(snap);
    SCHEDULE.observe(snap);
    FAULT_SWEEP.observe(snap);
    RAYON_THREADS.observe(snap);
    PLAN.observe(snap);
    ROTATE.observe(snap);
    ROTATE_PASSES.observe(snap);
    TOPLEV_DISPATCH.observe(snap);
    TOPLEV_FPU.observe(snap);
    TOPLEV_DCACHE_TLB.observe(snap);
    TOPLEV_ICACHE.observe(snap);
    TOPLEV_IO_WAIT.observe(snap);
    let workers = RAYON_THREADS.get().max(1.0);
    let advance_wall = ADVANCE.total_ns() as f64;
    snap.append(
        "cluster.worker_utilization",
        MetricValue::Value(if advance_wall > 0.0 {
            (ADVANCE_BUSY_NS.get() as f64 / (advance_wall * workers)).min(1.0)
        } else {
            0.0
        }),
    );
    let campaign_wall_s = CAMPAIGN.total_ns() as f64 / 1e9;
    snap.append(
        "cluster.sim_seconds_per_wall_second",
        MetricValue::Value(if campaign_wall_s > 0.0 {
            SIMULATED_S.get() as f64 / campaign_wall_s
        } else {
            0.0
        }),
    );
}

/// Zeroes every reading.
pub fn reset() {
    CAMPAIGN.reset();
    EVENTS.reset();
    SIMULATED_S.reset();
    SWEEPS.reset();
    SWEEPS_ELIDED.reset();
    ADVANCE.reset();
    ADVANCE_BUSY_NS.reset();
    SAMPLE.reset();
    SCHEDULE.reset();
    FAULT_SWEEP.reset();
    RAYON_THREADS.reset();
    PLAN.reset();
    ROTATE.reset();
    ROTATE_PASSES.reset();
    TOPLEV_DISPATCH.reset();
    TOPLEV_FPU.reset();
    TOPLEV_DCACHE_TLB.reset();
    TOPLEV_ICACHE.reset();
    TOPLEV_IO_WAIT.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reports_phases_and_derived_rates() {
        let mut snap = MetricsSnapshot::new();
        collect(&mut snap);
        for key in [
            "cluster.campaign",
            "cluster.events",
            "cluster.sweeps",
            "cluster.sweeps_elided",
            "cluster.phase.advance",
            "cluster.phase.sample",
            "cluster.phase.schedule",
            "cluster.phase.faults",
            "cluster.phase.plan",
            "cluster.phase.rotate",
            "cluster.rotate_passes",
            "cluster.toplev.dispatch",
            "cluster.toplev.fpu",
            "cluster.toplev.dcache_tlb",
            "cluster.toplev.icache",
            "cluster.toplev.io_wait",
            "cluster.worker_utilization",
            "cluster.sim_seconds_per_wall_second",
        ] {
            assert!(snap.get(key).is_some(), "missing {key}");
        }
    }
}
