//! The batch node engine and its configuration.
//!
//! The campaign's hot path is the 15-minute sampling sweep: advance every
//! node's counters to the sweep time, then snapshot. The reference
//! engine ([`crate::state::NodeState`]) does this by walking a
//! `Vec<NodeState>`, each advance re-deriving the interval's event sets
//! from the node's [`ActivityPlan`] and folding them through the
//! selection — per node, per sweep, even though a quiet machine has 144
//! nodes running the *same* idle plan over the *same* 900-second
//! interval.
//!
//! [`NodeBank`] restructures this as struct-of-arrays batches:
//!
//! - **Counter lanes** live in one contiguous [`CounterBatch`] buffer
//!   (per node: user lanes then system lanes), so the advance inner loop
//!   is a cache-friendly streaming add instead of pointer chasing.
//! - **Plans are interned.** Installing a plan stores it once and gives
//!   the node a small id; the 50 nodes of a wide job share one entry, as
//!   do all idle nodes.
//! - **Deltas are cached per `(plan, dt)`.** Event generation is a pure
//!   function of the plan and the elapsed interval, and the monitor's
//!   `absorb` is a wrapping per-slot add — so the whole advance of a
//!   node over `dt` is "add a precomputed lane vector". The sweep
//!   cadence makes `dt` repeat exactly (times accumulate as exact
//!   multiples of 900.0), so steady intervals — idle nights, long jobs —
//!   hit the cache and cost one vectorizable add per node. This is the
//!   cluster-interval analogue of the kernel-level steady-state
//!   fast-forward, and like it, the result is bit-identical to the
//!   reference path by construction.
//!
//! [`EngineConfig`] is the explicit configuration the engine runs under:
//! which engine, how many worker threads, and the switches that used to
//! be reachable only as process globals (fast-forward, metrics capture,
//! flight-recorder cadence). `None` fields inherit whatever the process
//! globals currently say, so a default config changes nothing.

use crate::activity::ActivityPlan;
use rayon::prelude::*;
use sp2_hpm::{CounterSelection, CounterSnapshot};
use sp2_power2::{BatchDelta, CounterBatch};

/// Which node engine a campaign runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The struct-of-arrays batch engine ([`NodeBank`]): interned plans,
    /// cached `(plan, dt)` deltas, contiguous counter lanes. The
    /// default; bit-identical to [`EngineKind::Reference`] (the
    /// equivalence suite proves it at every thread count).
    #[default]
    Batch,
    /// The original per-node loop over `Vec<NodeState>` — the reference
    /// the batch engine is proven against.
    Reference,
}

/// Explicit engine configuration, replacing scattered process-global
/// switches.
///
/// Every `Option` field means "`None` = leave the process-wide setting
/// alone", so `EngineConfig::default()` is behavior-preserving. CLI
/// flags translate into one of these; [`EngineConfig::apply`] pushes the
/// explicit choices into the globals the lower layers consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Node engine to run campaigns on.
    pub engine: EngineKind,
    /// Dedicated worker-pool size for the campaign: `None` inherits the
    /// caller's current pool; `Some(0)` builds one thread per core;
    /// `Some(n)` builds an `n`-thread pool.
    pub threads: Option<usize>,
    /// Steady-state fast-forward for kernel measurement (`--no-fast-forward`).
    pub fast_forward: Option<bool>,
    /// Self-metering metric capture (`--metrics` / `profile`).
    pub metrics: Option<bool>,
    /// Flight-recorder cadence in daemon sweeps (`--trace-out` /
    /// `timeline`). Applied by the layer that owns the recorder's
    /// collector (`sp2-core`'s timeline module), not by
    /// [`EngineConfig::apply`].
    pub recording_cadence: Option<u64>,
    /// Longest steady-sweep run the cluster-interval fast-forward may
    /// gather when samples spill to a `SampleSink` (out-of-core
    /// campaigns). The cap is what bounds sample residency between sink
    /// drains: an idle multi-month campaign would otherwise gather its
    /// whole history as one run before anything could leave the
    /// process. Without a sink the run is unbounded (the samples are
    /// resident anyway) and this field is ignored. Splitting a steady
    /// run never changes results — the first sweeps of the next run are
    /// stepped, and stepping is bit-identical to fast-forwarding — so
    /// this knob trades residency against elision length only. Default
    /// 96 (one day of 15-minute sweeps); must be at least 2 (a run of
    /// one can never elide).
    pub spill_max_run: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            engine: EngineKind::default(),
            threads: None,
            fast_forward: None,
            metrics: None,
            recording_cadence: None,
            spill_max_run: 96,
        }
    }
}

impl EngineConfig {
    /// Selects the engine kind.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Requests a dedicated worker pool (see the field docs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the fast-forward switch explicitly.
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = Some(on);
        self
    }

    /// Sets metric capture explicitly.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = Some(on);
        self
    }

    /// Sets the flight-recorder cadence explicitly.
    pub fn recording_cadence(mut self, cadence: u64) -> Self {
        self.recording_cadence = Some(cadence);
        self
    }

    /// Sets the spill-mode steady-run cap (see the field docs).
    ///
    /// # Panics
    /// Panics when `cap < 2`: a cap of 1 would forbid gathering even a
    /// template sweep and silently disable the fast-forward, which is
    /// what [`EngineConfig::fast_forward`] is for.
    pub fn spill_max_run(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "spill_max_run must be at least 2, got {cap}");
        self.spill_max_run = cap;
        self
    }

    /// Pushes the explicit switches into the process-wide settings the
    /// measurement layers consult. `None` fields are untouched;
    /// `recording_cadence` is applied by `sp2-core` (the recorder's
    /// collector lives there).
    pub fn apply(&self) {
        if let Some(on) = self.fast_forward {
            sp2_power2::set_fast_forward_enabled(on);
        }
        if let Some(on) = self.metrics {
            sp2_trace::set_enabled(on);
        }
    }
}

/// Bound on cached `(plan, dt)` deltas per plan entry. Sweep-aligned
/// intervals reuse a handful of exact `dt` values; job boundaries add
/// stragglers that are each used once — when the cache fills, the
/// least-recently-used tail entry is dropped.
const DT_CACHE_CAP: usize = 16;

/// Smallest lane buffer worth distributing over the worker pool. A
/// node's advance is a handful of wrapping adds — far below the cost of
/// dispatching a stolen task — so small banks (the paper's 144-node
/// machine included) apply serially even when a pool is attached, and
/// the pool earns its keep only on banks thousands of nodes wide.
/// Scheduling never changes results: each node's lanes are written
/// exactly once either way.
const MIN_PAR_LANES: usize = 1 << 14;

/// One interned activity plan shared by every node running it.
#[derive(Debug, Clone)]
struct PlanEntry {
    plan: ActivityPlan,
    /// Nodes currently pointing at this entry; 0 marks a free slot.
    refs: usize,
    /// `(dt_bits, delta)` cache, most-recently-used first.
    deltas: Vec<(u64, BatchDelta)>,
}

impl PlanEntry {
    /// The pre-folded delta for advancing `dt` seconds under this plan,
    /// computing and caching it on first use.
    fn delta(&mut self, dt: f64, selection: &CounterSelection) -> &BatchDelta {
        let bits = dt.to_bits();
        if let Some(pos) = self.deltas.iter().position(|(b, _)| *b == bits) {
            // Keep the hot dt at the front so steady sweeps scan one entry.
            self.deltas.swap(0, pos);
            return &self.deltas[0].1;
        }
        let user = self.plan.user_events(dt) + self.plan.dma_events(dt);
        let system = self.plan.system_events(dt) + self.plan.io_wait_events(dt);
        let delta = BatchDelta::fold(selection, &user, &system, true);
        if self.deltas.len() == DT_CACHE_CAP {
            self.deltas.pop();
        }
        self.deltas.insert(0, (bits, delta));
        &self.deltas[0].1
    }
}

/// Reusable temporaries for the advance passes: the distinct
/// `(plan, dt_bits)` keys seen this pass, their resolved deltas, the
/// per-node delta index (dense, for whole-bank passes), and the
/// `(node, delta index)` list (sparse, for job-sized node lists). Held
/// by the bank and cleared per pass so steady-state advancing allocates
/// nothing once the vectors have grown to their working size.
#[derive(Debug, Clone, Default)]
struct ResolveScratch {
    keys: Vec<(u32, u64)>,
    deltas: Vec<BatchDelta>,
    which: Vec<u32>,
    targets: Vec<(u32, u32)>,
}

/// The batch node engine: every node's counters, activity, and clock in
/// struct-of-arrays layout.
///
/// Semantically a `Vec<NodeState>` — same operations, same panics, and
/// bit-identical counter values — advanced in batch. See the module docs
/// for why that is faster.
#[derive(Debug, Clone)]
pub struct NodeBank {
    selection: CounterSelection,
    batch: CounterBatch,
    /// Interned plan id per node; `None` = no activity (crashed node).
    plan_of: Vec<Option<u32>>,
    /// Last time each node's counters were advanced.
    last_advance: Vec<f64>,
    plans: Vec<PlanEntry>,
    /// Plan slots whose refcount dropped to zero, reused on intern.
    free: Vec<u32>,
    scratch: ResolveScratch,
}

impl NodeBank {
    /// Creates `nodes` idle nodes at time 0 with the given selection.
    pub fn new(selection: CounterSelection, nodes: usize) -> Self {
        NodeBank {
            batch: CounterBatch::new(selection.clone(), nodes),
            selection,
            plan_of: vec![None; nodes],
            last_advance: vec![0.0; nodes],
            plans: Vec::new(),
            free: Vec::new(),
            scratch: ResolveScratch::default(),
        }
    }

    /// Number of nodes in the bank.
    pub fn node_count(&self) -> usize {
        self.plan_of.len()
    }

    fn intern(&mut self, plan: ActivityPlan) -> u32 {
        if let Some(id) = self.plans.iter().position(|e| e.refs > 0 && e.plan == plan) {
            self.plans[id].refs += 1;
            return id as u32;
        }
        let entry = PlanEntry {
            plan,
            refs: 1,
            deltas: Vec::new(),
        };
        if let Some(id) = self.free.pop() {
            self.plans[id as usize] = entry;
            id
        } else {
            self.plans.push(entry);
            (self.plans.len() - 1) as u32
        }
    }

    fn release(&mut self, id: u32) {
        let entry = &mut self.plans[id as usize];
        entry.refs -= 1;
        if entry.refs == 0 {
            entry.deltas = Vec::new();
            self.free.push(id);
        }
    }

    /// Advances one node's counters to `t` — the batch equivalent of
    /// [`crate::state::NodeState::advance`], with the same monotonicity
    /// contract.
    pub fn advance_node(&mut self, node: usize, t: f64) {
        let last = self.last_advance[node];
        assert!(t >= last - 1e-9, "time went backwards: {t} < {last}");
        let dt = t - last;
        if dt <= 0.0 {
            return;
        }
        if let Some(p) = self.plan_of[node] {
            let delta = self.plans[p as usize].delta(dt, &self.selection);
            delta.apply_to(self.batch.node_lanes_mut(node));
        }
        self.last_advance[node] = t;
    }

    /// Advances every node to `t` in one batched pass: resolve the
    /// distinct `(plan, dt)` deltas once (serial, almost always cached),
    /// then stream the lane adds — in parallel over the worker pool when
    /// the bank is large enough to pay for it, serially otherwise.
    /// Scheduling cannot matter: each node's lanes are written exactly
    /// once.
    pub fn advance_all(&mut self, t: f64) {
        let n = self.node_count();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.keys.clear();
        scratch.deltas.clear();
        scratch.which.clear();
        scratch.which.resize(n, u32::MAX);
        for (i, w) in scratch.which.iter_mut().enumerate() {
            let last = self.last_advance[i];
            assert!(t >= last - 1e-9, "time went backwards: {t} < {last}");
            let dt = t - last;
            if dt <= 0.0 {
                continue;
            }
            self.last_advance[i] = t;
            let Some(p) = self.plan_of[i] else { continue };
            let bits = dt.to_bits();
            let idx = match scratch.keys.iter().position(|&k| k == (p, bits)) {
                Some(idx) => idx,
                None => {
                    let d = self.plans[p as usize].delta(dt, &self.selection).clone();
                    scratch.keys.push((p, bits));
                    scratch.deltas.push(d);
                    scratch.deltas.len() - 1
                }
            };
            *w = idx as u32;
        }
        self.apply_resolved(&scratch.which, &scratch.deltas, 1);
        self.scratch = scratch;
    }

    /// Advances just the listed nodes to `t` — the job prologue/epilogue
    /// path, where a whole allocation is read at once. Exactly
    /// equivalent to [`NodeBank::advance_node`] per node (each node must
    /// appear at most once), but the distinct `(plan, dt)` deltas are
    /// resolved once for the list instead of once per node, and each
    /// resolved delta is applied straight from the plan's cache — no
    /// clone, no allocation beyond the bank's reusable scratch.
    pub fn advance_many(&mut self, nodes: &[usize], t: f64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.keys.clear();
        scratch.targets.clear();
        for &i in nodes {
            let last = self.last_advance[i];
            assert!(t >= last - 1e-9, "time went backwards: {t} < {last}");
            let dt = t - last;
            if dt <= 0.0 {
                continue;
            }
            self.last_advance[i] = t;
            let Some(p) = self.plan_of[i] else { continue };
            let bits = dt.to_bits();
            let idx = match scratch.keys.iter().position(|&k| k == (p, bits)) {
                Some(idx) => idx,
                None => {
                    scratch.keys.push((p, bits));
                    scratch.keys.len() - 1
                }
            };
            scratch.targets.push((i as u32, idx as u32));
        }
        for (gi, &(p, bits)) in scratch.keys.iter().enumerate() {
            let dt = f64::from_bits(bits);
            let delta = self.plans[p as usize].delta(dt, &self.selection);
            for &(i, w) in &scratch.targets {
                if w as usize == gi {
                    delta.apply_to(self.batch.node_lanes_mut(i as usize));
                }
            }
        }
        self.scratch = scratch;
    }

    /// Fast-forwards every node through `steps` sweeps of exactly `dt`
    /// seconds each, landing on `t_final`, in one application per node:
    /// the plan's `dt` delta scaled by `steps` ([`BatchDelta::apply_scaled`])
    /// is bit-identical to `steps` repeated [`NodeBank::advance_all`]
    /// calls because the per-sweep delta is a pure function of
    /// `(plan, dt)` and lane application is wrapping addition.
    ///
    /// Callers must guarantee the steadiness: every node's plan is
    /// unchanged across the whole run and every node was last advanced
    /// exactly `steps × dt` before `t_final` (the sweep cadence makes
    /// those times exact f64 multiples of the interval).
    pub fn advance_steady(&mut self, dt: f64, steps: u64, t_final: f64) {
        let n = self.node_count();
        let bits = dt.to_bits();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.keys.clear();
        scratch.deltas.clear();
        scratch.which.clear();
        scratch.which.resize(n, u32::MAX);
        for (i, w) in scratch.which.iter_mut().enumerate() {
            let last = self.last_advance[i];
            assert!(
                t_final >= last - 1e-9,
                "time went backwards: {t_final} < {last}"
            );
            self.last_advance[i] = t_final;
            let Some(p) = self.plan_of[i] else { continue };
            let idx = match scratch.keys.iter().position(|&k| k == (p, bits)) {
                Some(idx) => idx,
                None => {
                    let d = self.plans[p as usize].delta(dt, &self.selection).clone();
                    scratch.keys.push((p, bits));
                    scratch.deltas.push(d);
                    scratch.deltas.len() - 1
                }
            };
            *w = idx as u32;
        }
        self.apply_resolved(&scratch.which, &scratch.deltas, steps);
        self.scratch = scratch;
    }

    /// Applies the resolved per-node deltas (scaled by `steps`) onto the
    /// lane buffer — in worker-pool chunks when the bank is big enough
    /// ([`MIN_PAR_LANES`]), serially otherwise.
    fn apply_resolved(&mut self, which: &[u32], deltas: &[BatchDelta], steps: u64) {
        let n = self.node_count();
        let stride = self.batch.stride();
        let lanes = self.batch.lanes_mut();
        let threads = rayon::current_num_threads();
        if threads > 1 && n > 1 && lanes.len() >= MIN_PAR_LANES {
            // One worker-sized chunk per thread, not one per node: the
            // per-node add is a handful of lane additions, far below the
            // cost of a stolen task, so finer chunks would drown in pool
            // overhead.
            let per_chunk = n.div_ceil(threads);
            let base = lanes.as_ptr() as usize;
            lanes.par_chunks_mut(stride * per_chunk).for_each(|chunk| {
                let first =
                    (chunk.as_ptr() as usize - base) / (std::mem::size_of::<u64>() * stride);
                for (j, node_lanes) in chunk.chunks_mut(stride).enumerate() {
                    let w = which[first + j];
                    if w != u32::MAX {
                        match steps {
                            1 => deltas[w as usize].apply_to(node_lanes),
                            _ => deltas[w as usize].apply_scaled(node_lanes, steps),
                        }
                    }
                }
            });
        } else {
            for (i, chunk) in lanes.chunks_mut(stride).enumerate() {
                let w = which[i];
                if w != u32::MAX {
                    match steps {
                        1 => deltas[w as usize].apply_to(chunk),
                        _ => deltas[w as usize].apply_scaled(chunk, steps),
                    }
                }
            }
        }
    }

    /// Installs a new activity on one node (advancing it to `t` first).
    pub fn set_activity(&mut self, node: usize, t: f64, plan: Option<ActivityPlan>) {
        self.advance_node(node, t);
        if let Some(old) = self.plan_of[node].take() {
            self.release(old);
        }
        self.plan_of[node] = plan.map(|p| self.intern(p));
    }

    /// Puts every listed node on `plan` at `t`, exactly as
    /// [`NodeBank::set_activity`] per node would — but the plan is
    /// interned once and the remaining nodes take refcount bumps, so a
    /// 128-wide job start costs one deep plan comparison instead of 128.
    pub fn set_activity_many(&mut self, nodes: &[usize], t: f64, plan: ActivityPlan) {
        if nodes.is_empty() {
            return;
        }
        for &n in nodes {
            self.advance_node(n, t);
            if let Some(old) = self.plan_of[n].take() {
                self.release(old);
            }
        }
        let id = self.intern(plan);
        self.plans[id as usize].refs += nodes.len() - 1;
        for &n in nodes {
            self.plan_of[n] = Some(id);
        }
    }

    /// Reboots one node at `t`: activity dropped, counters cleared.
    pub fn reboot(&mut self, node: usize, t: f64) {
        self.advance_node(node, t);
        if let Some(old) = self.plan_of[node].take() {
            self.release(old);
        }
        self.batch.reset(node);
    }

    /// Snapshots one node's monitor as of time `t`.
    pub fn snapshot_at(&mut self, node: usize, t: f64) -> CounterSnapshot {
        self.advance_node(node, t);
        self.batch.snapshot(node)
    }

    /// Reads one node's monitor without advancing (daemon sampling after
    /// an explicit [`NodeBank::advance_all`]).
    pub fn snapshot(&self, node: usize) -> CounterSnapshot {
        self.batch.snapshot(node)
    }

    /// [`NodeBank::snapshot`] into an existing snapshot, reusing its
    /// buffers — the sweep loop's allocation-free read.
    pub fn snapshot_into(&self, node: usize, out: &mut CounterSnapshot) {
        self.batch.snapshot_into(node, out);
    }

    /// [`NodeBank::snapshot_into`] over a node list in one pass over the
    /// lane buffer — `outs[i]` receives `nodes[i]`'s reading. Pair with
    /// [`NodeBank::advance_many`] for the job prologue/epilogue path.
    pub fn snapshot_many_into(&self, nodes: &[usize], outs: &mut [CounterSnapshot]) {
        self.batch.snapshot_many_into(nodes, outs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::PagingModel;
    use crate::state::NodeState;
    use sp2_hpm::nas_selection;
    use sp2_power2::handler::{daemon_sample_signature, page_fault_signature};
    use sp2_power2::MachineConfig;
    use sp2_switch::SwitchConfig;

    fn idle_plan() -> ActivityPlan {
        let cfg = MachineConfig::nas_sp2();
        ActivityPlan::idle(&daemon_sample_signature(&cfg), &PagingModel::default())
    }

    fn job_plan(seed: u64) -> ActivityPlan {
        let cfg = MachineConfig::nas_sp2();
        let library = sp2_workload::WorkloadLibrary::build(&cfg, seed);
        let program = &library.programs()[0];
        ActivityPlan::for_job(
            program,
            library.signature_of(program.id),
            &page_fault_signature(&cfg),
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            4,
        )
    }

    /// Drives a NodeBank and a Vec<NodeState> through the same scripted
    /// history and asserts bit-identical snapshots throughout.
    #[test]
    fn bank_matches_reference_nodes_through_a_scripted_history() {
        let sel = nas_selection();
        let n = 8;
        let mut bank = NodeBank::new(sel.clone(), n);
        let mut refs: Vec<NodeState> = (0..n).map(|_| NodeState::new(sel.clone())).collect();

        let idle = idle_plan();
        let job = job_plan(42);
        for (i, r) in refs.iter_mut().enumerate() {
            bank.set_activity(i, 0.0, Some(idle.clone()));
            r.set_activity(0.0, Some(idle.clone()));
        }
        // Sweep, start a job on half the nodes mid-interval, sweep again,
        // finish the job off-cadence, crash and reboot one node.
        bank.advance_all(900.0);
        refs.iter_mut().for_each(|r| r.advance(900.0));
        for (i, r) in refs.iter_mut().enumerate().take(4) {
            bank.set_activity(i, 1_130.5, Some(job.clone()));
            r.set_activity(1_130.5, Some(job.clone()));
        }
        bank.advance_all(1_800.0);
        refs.iter_mut().for_each(|r| r.advance(1_800.0));
        for (i, r) in refs.iter_mut().enumerate().take(4) {
            assert_eq!(bank.snapshot_at(i, 2_345.25), r.snapshot_at(2_345.25));
            bank.set_activity(i, 2_345.25, Some(idle.clone()));
            r.set_activity(2_345.25, Some(idle.clone()));
        }
        bank.set_activity(7, 2_400.0, None);
        refs[7].set_activity(2_400.0, None);
        bank.advance_all(2_700.0);
        refs.iter_mut().for_each(|r| r.advance(2_700.0));
        bank.reboot(7, 2_800.0);
        refs[7].reboot(2_800.0);
        bank.set_activity(7, 2_800.0, Some(idle.clone()));
        refs[7].set_activity(2_800.0, Some(idle.clone()));
        bank.advance_all(3_600.0);
        refs.iter_mut().for_each(|r| r.advance(3_600.0));

        for (i, r) in refs.iter().enumerate() {
            assert_eq!(bank.snapshot(i), r.hpm().snapshot(), "node {i}");
        }
    }

    #[test]
    fn plan_interning_shares_entries_and_reclaims_slots() {
        let sel = nas_selection();
        let mut bank = NodeBank::new(sel, 4);
        let idle = idle_plan();
        for i in 0..4 {
            bank.set_activity(i, 0.0, Some(idle.clone()));
        }
        assert_eq!(bank.plans.len(), 1, "equal plans intern to one entry");
        assert_eq!(bank.plans[0].refs, 4);
        let job = job_plan(7);
        bank.set_activity(0, 10.0, Some(job.clone()));
        assert_eq!(bank.plans.len(), 2);
        bank.set_activity(0, 20.0, Some(idle.clone()));
        assert_eq!(bank.plans[0].refs, 4);
        assert_eq!(bank.free, vec![1], "dropped plan slot is reclaimable");
        bank.set_activity(1, 30.0, Some(job));
        assert_eq!(bank.plans.len(), 2, "free slot reused, no growth");
    }

    #[test]
    fn steady_sweeps_hit_the_delta_cache() {
        let sel = nas_selection();
        let mut bank = NodeBank::new(sel, 16);
        let idle = idle_plan();
        for i in 0..16 {
            bank.set_activity(i, 0.0, Some(idle.clone()));
        }
        let mut t = 0.0;
        for _ in 0..100 {
            t += 900.0;
            bank.advance_all(t);
        }
        // 100 uniform sweeps resolve to a single cached (plan, dt) delta.
        assert_eq!(bank.plans[0].deltas.len(), 1);
    }

    #[test]
    fn steady_fast_forward_matches_stepped_sweeps_bitwise() {
        let sel = nas_selection();
        let n = 6;
        let mut stepped = NodeBank::new(sel.clone(), n);
        let mut jumped = NodeBank::new(sel, n);
        let idle = idle_plan();
        let job = job_plan(11);
        for i in 0..n {
            let plan = if i % 2 == 0 {
                idle.clone()
            } else {
                job.clone()
            };
            stepped.set_activity(i, 0.0, Some(plan.clone()));
            jumped.set_activity(i, 0.0, Some(plan));
        }
        // Leave one node mid-interval and one crashed, as a real run
        // boundary would.
        stepped.advance_node(3, 120.25);
        jumped.advance_node(3, 120.25);
        stepped.set_activity(5, 200.0, None);
        jumped.set_activity(5, 200.0, None);
        // One normal sweep aligns everyone; then 40 steady sweeps.
        stepped.advance_all(900.0);
        jumped.advance_all(900.0);
        let mut t = 900.0;
        for _ in 0..40 {
            t += 900.0;
            stepped.advance_all(t);
        }
        jumped.advance_steady(900.0, 40, t);
        for i in 0..n {
            assert_eq!(jumped.snapshot(i), stepped.snapshot(i), "node {i}");
        }
    }

    #[test]
    fn dt_cache_stays_bounded_under_job_churn() {
        let sel = nas_selection();
        let mut bank = NodeBank::new(sel, 1);
        bank.set_activity(0, 0.0, Some(idle_plan()));
        let mut t = 0.0;
        for i in 0..200 {
            t += 1.0 + (i as f64) * 0.001; // every dt distinct
            bank.advance_node(0, t);
        }
        assert!(bank.plans[0].deltas.len() <= DT_CACHE_CAP);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_reversal_rejected() {
        let mut bank = NodeBank::new(nas_selection(), 1);
        bank.advance_all(100.0);
        bank.advance_all(50.0);
    }

    #[test]
    fn default_engine_config_is_inert() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.engine, EngineKind::Batch);
        assert!(cfg.threads.is_none());
        assert!(cfg.fast_forward.is_none());
        assert!(cfg.metrics.is_none());
        assert!(cfg.recording_cadence.is_none());
        // apply() must not disturb process globals.
        let ff = sp2_power2::fast_forward_enabled();
        let tr = sp2_trace::enabled();
        cfg.apply();
        assert_eq!(sp2_power2::fast_forward_enabled(), ff);
        assert_eq!(sp2_trace::enabled(), tr);
    }
}
