//! Rotated campaigns: multiplexing a counter request wider than the
//! hardware across daemon sweeps.
//!
//! The POWER2 monitor watches 22 signals at a time; a request wider than
//! one [`sp2_hpm::CounterSelection`] needs a [`SchedulePlan`] of several
//! passes, with the daemon switching pass between 15-minute sweeps. The
//! simulator exploits a property the real machine also had: which jobs
//! run where, when nodes fail, and what every node executes are all
//! independent of which counter selection the monitor happens to be
//! wired to. So instead of threading selection switches through the
//! event loop (which would invalidate the selection-shaped node banks),
//! a rotated campaign runs one *lockstep* campaign per planned pass —
//! identical trace, faults, and engine — and attributes interval `k` of
//! pass `p`'s sample series to the sweeps where the rotation
//! ([`SchedulePlan::pass_for_sweep`]) had pass `p` on the hardware. The
//! interleaved series is exactly what a selection-switching daemon would
//! have recorded, and [`RotatedCampaign::reconstruct`] scales each
//! signal's observed coverage back to the full interval with per-signal
//! error bounds.
//!
//! A single-pass plan degenerates to [`run_campaign_cfg`]
//! (`crate::run_campaign_cfg`) by construction, so its reconstruction is
//! bit-identical to the direct campaign with multiplexing error exactly
//! zero — the property `tests/toplev.rs` pins down.

use crate::engine::EngineConfig;
use crate::faults::FaultPlan;
use crate::result::CampaignResult;
use crate::sim::{run_campaign_cfg_cancellable, CampaignError, CancelToken, ClusterConfig};
use serde::{Deserialize, Serialize};
use sp2_hpm::{PlanError, SchedulePlan, Signal};
use sp2_rs2hpm::{reconstruct, ReconstructError, Reconstruction, SystemSample};
use sp2_workload::{SubmittedJob, WorkloadLibrary};

/// Plans the minimal pass sequence covering `wanted`, metered under the
/// `cluster.phase.plan` timer.
pub fn plan_signals(wanted: &[Signal]) -> SchedulePlan {
    let _span = crate::metrics::PLAN.span();
    let _ev = sp2_trace::events::span("toplev plan", "phase");
    SchedulePlan::minimal(wanted)
}

/// Plans a pass sequence of exactly `n_passes` covering `wanted` (extra
/// passes raise per-signal coverage), metered like [`plan_signals`].
pub fn plan_signals_with_passes(
    wanted: &[Signal],
    n_passes: usize,
) -> Result<SchedulePlan, PlanError> {
    let _span = crate::metrics::PLAN.span();
    let _ev = sp2_trace::events::span("toplev plan", "phase");
    SchedulePlan::with_passes(wanted, n_passes)
}

/// A completed rotated campaign: the plan it executed and one full
/// campaign result per pass, in plan order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RotatedCampaign {
    /// The pass sequence the rotation cycled through.
    pub plan: SchedulePlan,
    /// One lockstep campaign per pass, index-aligned with
    /// `plan.passes()`.
    pub passes: Vec<CampaignResult>,
}

impl RotatedCampaign {
    /// The sweep-interleaved sample series each pass contributed.
    fn series(&self) -> Vec<&[SystemSample]> {
        self.passes.iter().map(|c| c.samples.as_slice()).collect()
    }

    /// Reconstructs full-interval estimates (with coverage fractions and
    /// multiplexing error bounds) for every requested signal.
    pub fn reconstruct(&self) -> Result<Reconstruction, ReconstructError> {
        reconstruct(&self.plan, &self.series())
    }
}

/// Runs one lockstep campaign per planned pass and bundles the results.
///
/// Every pass sees the identical workload trace, fault plan, and engine
/// configuration; only `config.selection` differs. Passes run under the
/// `cluster.phase.rotate` timer with one `rotate pass N` trace span
/// each. An empty plan (an empty signal request) is a typed error.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_rotated(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    faults: &FaultPlan,
    engine: &EngineConfig,
    plan: &SchedulePlan,
    cancel: Option<&CancelToken>,
) -> Result<RotatedCampaign, CampaignError> {
    if plan.n_passes() == 0 {
        return Err(CampaignError::EmptyPlan);
    }
    crate::metrics::ROTATE_PASSES.add(plan.n_passes() as u64);
    let mut passes = Vec::with_capacity(plan.n_passes());
    for (p, sel) in plan.passes().iter().enumerate() {
        let _span = crate::metrics::ROTATE.span();
        let _ev = sp2_trace::events::span(format!("rotate pass {p}"), "phase");
        let mut cfg = config.clone();
        cfg.selection = sel.clone();
        passes.push(run_campaign_cfg_cancellable(
            &cfg, library, trace, days, faults, engine, cancel,
        )?);
    }
    Ok(RotatedCampaign {
        plan: plan.clone(),
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_campaign_cfg;
    use sp2_hpm::nas_selection;
    use sp2_workload::{trace, CampaignSpec, JobMix};

    fn small_setup() -> (ClusterConfig, WorkloadLibrary, Vec<SubmittedJob>, FaultPlan) {
        let config = ClusterConfig::builder()
            .nodes(24)
            .drain_threshold(12)
            .build()
            .expect("valid config");
        let library = WorkloadLibrary::build(&config.machine, 42);
        let spec = CampaignSpec {
            days: 2,
            seed: 3,
            ..Default::default()
        };
        let jobs: Vec<_> = trace::generate(&spec, &JobMix::nas(), &library)
            .into_iter()
            .filter(|j| j.nodes as usize <= 24)
            .collect();
        let faults = FaultPlan::generate(24, 2, 1.5, 9);
        (config, library, jobs, faults)
    }

    #[test]
    fn single_pass_rotation_is_bit_identical_with_zero_error() {
        let (config, library, jobs, faults) = small_setup();
        // A request listing nas_selection's signals in slot order plans
        // a single pass equal to nas_selection itself, so the rotated
        // path must literally be run_campaign_cfg.
        let wanted: Vec<Signal> = nas_selection().slots().iter().map(|s| s.signal).collect();
        let plan = plan_signals(&wanted);
        assert!(plan.is_single_pass());
        assert_eq!(plan.passes()[0], nas_selection());
        let rotated = run_campaign_rotated(
            &config,
            &library,
            &jobs,
            2,
            &faults,
            &EngineConfig::default(),
            &plan,
            None,
        )
        .expect("rotated runs");
        let direct = run_campaign_cfg(
            &config,
            &library,
            &jobs,
            2,
            &faults,
            &EngineConfig::default(),
        )
        .expect("direct runs");
        assert_eq!(rotated.passes.len(), 1);
        assert_eq!(rotated.passes[0].samples, direct.samples);
        assert_eq!(rotated.passes[0].job_reports, direct.job_reports);
        let recon = rotated.reconstruct().expect("reconstructs");
        assert_eq!(recon.max_error(), 0.0, "single pass sees everything");
        assert_eq!(recon.min_coverage(), 1.0);
        for est in &recon.estimates {
            assert_eq!(
                est.estimate.to_bits(),
                (est.observed as f64).to_bits(),
                "{:?} estimate must be the untouched observation",
                est.signal
            );
        }
    }

    #[test]
    fn rotated_full_request_reports_coverage_and_bounds() {
        let (config, library, jobs, faults) = small_setup();
        let plan = plan_signals(&Signal::ALL);
        assert_eq!(plan.n_passes(), 2, "28 signals need two passes");
        let rotated = run_campaign_rotated(
            &config,
            &library,
            &jobs,
            2,
            &faults,
            &EngineConfig::default(),
            &plan,
            None,
        )
        .expect("rotated runs");
        let recon = rotated.reconstruct().expect("reconstructs");
        assert_eq!(recon.estimates.len(), Signal::ALL.len());
        for est in &recon.estimates {
            assert!(
                est.coverage > 0.0 && est.coverage <= 1.0,
                "{:?} coverage {}",
                est.signal,
                est.coverage
            );
            assert!(est.lo <= est.estimate && est.estimate <= est.hi);
        }
        // Cycles tick every interval, so its rotated estimate must be a
        // genuine partial observation with a finite error bound.
        let cyc = recon.estimate(Signal::Cycles).expect("cycles estimated");
        assert!(cyc.coverage < 1.0);
        assert!(cyc.error.is_finite());
    }

    #[test]
    fn empty_plan_is_a_typed_error() {
        let (config, library, jobs, faults) = small_setup();
        let plan = plan_signals(&[]);
        let err = run_campaign_rotated(
            &config,
            &library,
            &jobs,
            2,
            &faults,
            &EngineConfig::default(),
            &plan,
            None,
        )
        .unwrap_err();
        assert_eq!(err, CampaignError::EmptyPlan);
    }
}
