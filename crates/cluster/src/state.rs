//! Per-node counter state with lazy advancement.

use crate::activity::ActivityPlan;
use sp2_hpm::{CounterSelection, CounterSnapshot, Hpm, Mode};

/// One SP2 node's monitor plus its current activity.
#[derive(Debug, Clone)]
pub struct NodeState {
    hpm: Hpm,
    activity: Option<ActivityPlan>,
    last_advance_t: f64,
}

impl NodeState {
    /// Creates an idle node at time 0 with the given counter selection.
    pub fn new(selection: CounterSelection) -> Self {
        NodeState {
            hpm: Hpm::new(selection),
            activity: None,
            last_advance_t: 0.0,
        }
    }

    /// Advances counters to time `t`, absorbing events at the current
    /// activity's rates over the elapsed interval. Idempotent for equal
    /// `t`; `t` may never go backwards.
    pub fn advance(&mut self, t: f64) {
        assert!(
            t >= self.last_advance_t - 1e-9,
            "time went backwards: {t} < {}",
            self.last_advance_t
        );
        let dt = t - self.last_advance_t;
        if dt <= 0.0 {
            return;
        }
        if let Some(plan) = &self.activity {
            let user = plan.user_events(dt) + plan.dma_events(dt);
            let system = plan.system_events(dt) + plan.io_wait_events(dt);
            self.hpm.absorb(&user, Mode::User);
            self.hpm.absorb(&system, Mode::System);
        }
        self.last_advance_t = t;
    }

    /// Installs a new activity (advancing to `t` first).
    pub fn set_activity(&mut self, t: f64, plan: Option<ActivityPlan>) {
        self.advance(t);
        self.activity = plan;
    }

    /// The current activity, if any.
    pub fn activity(&self) -> Option<&ActivityPlan> {
        self.activity.as_ref()
    }

    /// Reboots the node at time `t` (repair after an outage): whatever
    /// activity was installed is dropped and the monitor's counters are
    /// cleared — the virtualized counter state does not survive a power
    /// cycle, which is why the daemon must re-baseline rebooted nodes.
    pub fn reboot(&mut self, t: f64) {
        self.advance(t);
        self.activity = None;
        self.hpm.reset();
    }

    /// Snapshots the monitor as of time `t`.
    pub fn snapshot_at(&mut self, t: f64) -> CounterSnapshot {
        self.advance(t);
        self.hpm.snapshot()
    }

    /// Read-only access to the monitor (for daemon sampling after an
    /// explicit advance).
    pub fn hpm(&self) -> &Hpm {
        &self.hpm
    }

    /// Last time this node's counters were advanced.
    pub fn last_advance(&self) -> f64 {
        self.last_advance_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::PagingModel;
    use sp2_hpm::nas_selection;
    use sp2_power2::handler::daemon_sample_signature;
    use sp2_power2::MachineConfig;

    fn idle_plan() -> ActivityPlan {
        let cfg = MachineConfig::nas_sp2();
        ActivityPlan::idle(&daemon_sample_signature(&cfg), &PagingModel::default())
    }

    #[test]
    fn idle_node_counters_stay_zero_without_activity() {
        let mut n = NodeState::new(nas_selection());
        n.advance(900.0);
        let s = n.snapshot_at(900.0);
        assert!(s.user.iter().all(|&c| c == 0));
        assert!(s.system.iter().all(|&c| c == 0));
    }

    #[test]
    fn activity_accumulates_over_time() {
        let mut n = NodeState::new(nas_selection());
        n.set_activity(0.0, Some(idle_plan()));
        let a = n.snapshot_at(900.0);
        let b = n.snapshot_at(1800.0);
        let total_a: u64 = a.system.iter().copied().sum();
        let total_b: u64 = b.system.iter().copied().sum();
        assert!(total_b > total_a);
        assert!(total_a > 0);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut n = NodeState::new(nas_selection());
        n.set_activity(0.0, Some(idle_plan()));
        let a = n.snapshot_at(500.0);
        let b = n.snapshot_at(500.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_reversal_rejected() {
        let mut n = NodeState::new(nas_selection());
        n.advance(100.0);
        n.advance(50.0);
    }

    #[test]
    fn reboot_clears_counters_and_activity() {
        let mut n = NodeState::new(nas_selection());
        n.set_activity(0.0, Some(idle_plan()));
        let before = n.snapshot_at(900.0);
        assert!(before.system.iter().any(|&c| c > 0));
        n.reboot(1000.0);
        assert!(n.snapshot_at(1000.0).system.iter().all(|&c| c == 0));
        assert!(n.activity().is_none());
        // Time keeps moving forward from the reboot point.
        let after = n.snapshot_at(2000.0);
        assert!(
            after.system.iter().all(|&c| c == 0),
            "no activity installed"
        );
    }

    #[test]
    fn clearing_activity_stops_accumulation() {
        let mut n = NodeState::new(nas_selection());
        n.set_activity(0.0, Some(idle_plan()));
        n.set_activity(900.0, None);
        let a = n.snapshot_at(900.0);
        let b = n.snapshot_at(1800.0);
        assert_eq!(a, b);
    }
}
