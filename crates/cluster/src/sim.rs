//! The campaign event loop.
//!
//! The loop itself is engine-agnostic: node state lives behind
//! [`Engine`], which is either the reference `Vec<NodeState>` walk or
//! the struct-of-arrays [`NodeBank`] batch engine. Both produce
//! bit-identical campaigns (the equivalence suite proves it at every
//! thread count); [`run_campaign`] pins the reference engine,
//! [`run_campaign_cfg`] selects per an explicit [`EngineConfig`].

use crate::activity::ActivityPlan;
use crate::engine::{EngineConfig, EngineKind, NodeBank};
use crate::faults::FaultPlan;
use crate::paging::PagingModel;
use crate::result::{CampaignResult, FaultSummary};
use crate::state::NodeState;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sp2_hpm::{nas_selection, CounterSelection, CounterSnapshot};
use sp2_pbs::{JobId, JobOutcome, JobRecord, JobSpec, Pbs, PbsError};
use sp2_power2::handler::{daemon_sample_signature, page_fault_signature};
use sp2_power2::{KernelSignature, MachineConfig};
use sp2_rs2hpm::{
    BottleneckSplit, CounterSource, Daemon, JobCounterReport, SampleSink, SAMPLE_INTERVAL_S,
};
use sp2_switch::SwitchConfig;
use sp2_workload::{CampaignSpec, JobMix, SubmittedJob, WorkloadLibrary};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// How many times a job may run before PBS gives up on it: the first
/// attempt plus up to two requeues after node failures.
const MAX_JOB_ATTEMPTS: u32 = 3;

/// Machine-level configuration of the simulated SP2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node count (144 at NAS).
    pub nodes: usize,
    /// Per-node machine parameters.
    pub machine: MachineConfig,
    /// Switch parameters.
    pub switch: SwitchConfig,
    /// Paging model parameters.
    pub paging: PagingModel,
    /// PBS drain threshold (64 at NAS).
    pub drain_threshold: u32,
    /// Counter selection every node's monitor runs (Table 1's at NAS;
    /// swap in [`sp2_hpm::io_aware_selection`] for the §7 extension).
    pub selection: CounterSelection,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 144,
            machine: MachineConfig::nas_sp2(),
            switch: SwitchConfig::default(),
            paging: PagingModel::default(),
            drain_threshold: 64,
            selection: nas_selection(),
        }
    }
}

impl ClusterConfig {
    /// Starts a validated builder seeded with the NAS defaults. Prefer
    /// this over field-struct construction: the builder rejects machine
    /// descriptions the simulator would silently mishandle.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig::default(),
        }
    }
}

/// A [`ClusterConfig`] that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// `nodes == 0`: a machine with no nodes can run no jobs.
    NoNodes,
    /// The drain threshold exceeds the machine size, so draining could
    /// never gather enough nodes and wide jobs would starve forever.
    DrainExceedsNodes { drain_threshold: u32, nodes: usize },
    /// An empty counter selection: the monitors would count nothing and
    /// every downstream rate would be zero.
    EmptySelection,
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterConfigError::NoNodes => write!(f, "cluster must have at least one node"),
            ClusterConfigError::DrainExceedsNodes {
                drain_threshold,
                nodes,
            } => write!(
                f,
                "drain threshold {drain_threshold} exceeds machine size {nodes}"
            ),
            ClusterConfigError::EmptySelection => {
                write!(f, "counter selection must watch at least one signal")
            }
        }
    }
}

impl std::error::Error for ClusterConfigError {}

/// Validated construction for [`ClusterConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Machine size in nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Per-node machine parameters.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.config.machine = machine;
        self
    }

    /// Switch parameters.
    pub fn switch(mut self, switch: SwitchConfig) -> Self {
        self.config.switch = switch;
        self
    }

    /// Paging model parameters.
    pub fn paging(mut self, paging: PagingModel) -> Self {
        self.config.paging = paging;
        self
    }

    /// PBS drain threshold.
    pub fn drain_threshold(mut self, drain_threshold: u32) -> Self {
        self.config.drain_threshold = drain_threshold;
        self
    }

    /// Counter selection every node's monitor runs.
    pub fn selection(mut self, selection: CounterSelection) -> Self {
        self.config.selection = selection;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<ClusterConfig, ClusterConfigError> {
        let c = self.config;
        if c.nodes == 0 {
            return Err(ClusterConfigError::NoNodes);
        }
        if c.drain_threshold as usize > c.nodes {
            return Err(ClusterConfigError::DrainExceedsNodes {
                drain_threshold: c.drain_threshold,
                nodes: c.nodes,
            });
        }
        if c.selection.is_empty() {
            return Err(ClusterConfigError::EmptySelection);
        }
        Ok(c)
    }
}

/// A campaign that could not run to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The dedicated worker pool could not be built.
    ThreadPool(String),
    /// PBS rejected a request the simulation issued (e.g. a trace job
    /// requesting more nodes than the configured machine has).
    Pbs(PbsError),
    /// The campaign's [`CancelToken`] was raised mid-run. Partial state
    /// is discarded; the campaign produced no result.
    Cancelled,
    /// The caller's [`SampleSink`] failed while samples were being
    /// spilled out of core (e.g. the archive's disk filled up).
    Spill(String),
    /// A rotated campaign was given a plan with no passes (an empty
    /// signal request plans nothing to rotate through).
    EmptyPlan,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::ThreadPool(e) => write!(f, "building the worker pool failed: {e}"),
            CampaignError::Pbs(e) => write!(f, "batch system rejected a request: {e}"),
            CampaignError::Cancelled => write!(f, "campaign cancelled"),
            CampaignError::Spill(e) => write!(f, "spilling samples failed: {e}"),
            CampaignError::EmptyPlan => write!(f, "rotation plan has no passes"),
        }
    }
}

/// Cooperative cancellation handle for a running campaign.
///
/// The campaign service hands one of these to every job it schedules;
/// raising it makes the event loop bail out with
/// [`CampaignError::Cancelled`] at the next event boundary (one relaxed
/// atomic load per event — the check never perturbs results, it only
/// decides whether the loop keeps going). Tokens are sharable
/// (`Arc<CancelToken>`) and idempotent: cancelling twice is fine, and a
/// token raised before the run starts cancels it at the first event.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: std::sync::atomic::AtomicBool,
}

impl CancelToken {
    /// A fresh, un-raised token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the token; every campaign holding it bails at its next
    /// event boundary.
    pub fn cancel(&self) {
        self.cancelled
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the token has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl std::error::Error for CampaignError {}

impl From<PbsError> for CampaignError {
    fn from(e: PbsError) -> Self {
        CampaignError::Pbs(e)
    }
}

/// Event kinds, ordered by time then kind for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A job submission (index into the trace).
    Submit(usize),
    /// A running job's `attempt`-th run finishes. Stale events (the
    /// attempt was killed by a node failure) are ignored on pop.
    Finish(JobId, u32),
    /// The RS2HPM daemon's 15-minute sample (1-based sweep index).
    Sample(u64),
    /// A node fails.
    NodeDown(usize),
    /// A node is repaired and rebooted.
    NodeUp(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Scheduled {
    t: f64,
    seq: u64,
    ev: Ev,
}

impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.total_cmp(&other.t).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct RunningJob {
    spec: JobSpec,
    nodes: Vec<usize>,
    start: f64,
    attempt: u32,
    prologue: Vec<CounterSnapshot>,
}

/// Per-campaign scratch for the job prologue/epilogue path. Retired
/// snapshot buffers and emptied prologue vectors cycle through these
/// pools instead of being dropped, so after warm-up a job start or
/// finish performs no heap allocation: prologues are drawn from
/// `prologues` + `snaps`, the epilogue batch is `epilogue` reused
/// across every Finish event, and a completed (or killed) job's buffers
/// all return here.
#[derive(Default)]
struct JobScratch {
    /// Retired [`CounterSnapshot`] buffers, ready to be overwritten.
    snaps: Vec<CounterSnapshot>,
    /// Retired prologue vectors (emptied, capacity kept).
    prologues: Vec<Vec<CounterSnapshot>>,
    /// The epilogue batch, drained back into `snaps` after each report.
    epilogue: Vec<CounterSnapshot>,
}

/// The node-state engine behind the event loop: same operations, same
/// results, two implementations (see the module docs).
// One Engine exists per campaign and lives on the stack of the event
// loop, so the size gap between the variants costs nothing.
#[allow(clippy::large_enum_variant)]
enum Engine {
    Reference(Vec<NodeState>),
    Batch(NodeBank),
}

impl Engine {
    fn new(kind: EngineKind, selection: &CounterSelection, nodes: usize) -> Self {
        match kind {
            EngineKind::Reference => Engine::Reference(
                (0..nodes)
                    .map(|_| NodeState::new(selection.clone()))
                    .collect(),
            ),
            EngineKind::Batch => Engine::Batch(NodeBank::new(selection.clone(), nodes)),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            Engine::Reference(nodes) => nodes.len(),
            Engine::Batch(bank) => bank.node_count(),
        }
    }

    fn set_activity(&mut self, node: usize, t: f64, plan: Option<ActivityPlan>) {
        match self {
            Engine::Reference(nodes) => nodes[node].set_activity(t, plan),
            Engine::Batch(bank) => bank.set_activity(node, t, plan),
        }
    }

    /// Puts every listed node on `plan` at `t` — the job start/finish
    /// path. Equivalent to [`Engine::set_activity`] per node; the batch
    /// engine interns the plan once and hands the other nodes refcount
    /// bumps instead of a deep plan comparison each.
    fn set_activity_many(&mut self, targets: &[usize], t: f64, plan: ActivityPlan) {
        match self {
            Engine::Reference(nodes) => {
                for &n in targets {
                    nodes[n].set_activity(t, Some(plan.clone()));
                }
            }
            Engine::Batch(bank) => bank.set_activity_many(targets, t, plan),
        }
    }

    fn snapshot(&self, node: usize) -> CounterSnapshot {
        match self {
            Engine::Reference(nodes) => nodes[node].hpm().snapshot(),
            Engine::Batch(bank) => bank.snapshot(node),
        }
    }

    /// [`Engine::snapshot`] into an existing snapshot, reusing its
    /// buffers (the sweep loop recycles retired daemon baselines).
    fn snapshot_into(&self, node: usize, out: &mut CounterSnapshot) {
        match self {
            Engine::Reference(nodes) => nodes[node].hpm().snapshot_into(out),
            Engine::Batch(bank) => bank.snapshot_into(node, out),
        }
    }

    /// Advances every listed node to `t`, then snapshots them all into
    /// `out` — the job prologue/epilogue path, equivalent to
    /// [`Engine::snapshot_at`] per node. The batch engine resolves the
    /// distinct `(plan, dt)` deltas once for the whole allocation and
    /// reads every node's lanes in one pass; snapshot buffers are drawn
    /// from `pool` (retired ones go back via the caller), so the path
    /// allocates nothing once the pool is warm.
    fn snapshot_many_at(
        &mut self,
        targets: &[usize],
        t: f64,
        out: &mut Vec<CounterSnapshot>,
        pool: &mut Vec<CounterSnapshot>,
    ) {
        debug_assert!(out.is_empty(), "callers drain the batch back to the pool");
        out.clear();
        match self {
            Engine::Reference(nodes) => {
                for &n in targets {
                    nodes[n].advance(t);
                    match pool.pop() {
                        Some(mut s) => {
                            nodes[n].hpm().snapshot_into(&mut s);
                            out.push(s);
                        }
                        None => out.push(nodes[n].hpm().snapshot()),
                    }
                }
            }
            Engine::Batch(bank) => {
                bank.advance_many(targets, t);
                for &n in targets {
                    match pool.pop() {
                        Some(s) => out.push(s),
                        None => out.push(bank.snapshot(n)),
                    }
                }
                bank.snapshot_many_into(targets, out);
            }
        }
    }

    fn reboot(&mut self, node: usize, t: f64) {
        match self {
            Engine::Reference(nodes) => nodes[node].reboot(t),
            Engine::Batch(bank) => bank.reboot(node, t),
        }
    }

    /// Advances every node to `t` — the sampling pass's hot path.
    fn advance_all(&mut self, t: f64, chunk: usize) {
        match self {
            Engine::Reference(nodes) => {
                if sp2_trace::enabled() {
                    // Worker-busy time is clocked per worker chunk, not
                    // per node: one Instant pair per chunk keeps the
                    // traced path inside the overhead budget while still
                    // summing all on-worker time. Chunking never changes
                    // results — nodes are independent and each advances
                    // exactly once.
                    nodes.par_chunks_mut(chunk).for_each(|chunk| {
                        let t0 = std::time::Instant::now();
                        for n in chunk.iter_mut() {
                            n.advance(t);
                        }
                        crate::metrics::ADVANCE_BUSY_NS.add(t0.elapsed().as_nanos() as u64);
                    });
                } else {
                    nodes.par_iter_mut().for_each(|n| n.advance(t));
                }
            }
            Engine::Batch(bank) => {
                if sp2_trace::enabled() {
                    let t0 = std::time::Instant::now();
                    bank.advance_all(t);
                    crate::metrics::ADVANCE_BUSY_NS.add(t0.elapsed().as_nanos() as u64);
                } else {
                    bank.advance_all(t);
                }
            }
        }
    }
}

/// Daemon adaptor over the advanced engine.
struct EngineSource<'a> {
    engine: &'a Engine,
    down: &'a [bool],
}

impl CounterSource for EngineSource<'_> {
    fn node_count(&self) -> usize {
        self.engine.node_count()
    }
    fn node_available(&self, node: usize) -> bool {
        !self.down[node]
    }
    fn snapshot(&self, node: usize) -> CounterSnapshot {
        self.engine.snapshot(node)
    }
}

/// Runs the full campaign: replays `trace` through PBS on the simulated
/// machine for `days` days, injecting `faults`, and returns every dataset
/// the paper's evaluation uses.
///
/// With [`FaultPlan::none`] the result is bit-identical to a fault-free
/// engine at any thread count; with a generated plan the result is fully
/// determined by the trace seed and the fault seed.
///
/// Runs on the reference per-node engine — the baseline the batch
/// engine's equivalence suite is proven against. Production callers go
/// through [`run_campaign_cfg`], which defaults to the (bit-identical,
/// faster) batch engine.
pub fn run_campaign(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    faults: &FaultPlan,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_inner(
        config,
        library,
        trace,
        days,
        faults,
        &EngineConfig::default().engine(EngineKind::Reference),
        None,
        None,
    )
}

/// Runs the campaign under an explicit [`EngineConfig`]: applies its
/// switches, builds a dedicated worker pool if `threads` is set
/// (inheriting the caller's pool otherwise), and selects the node
/// engine. Campaign results are bit-identical under every engine,
/// thread count, and switch setting.
pub fn run_campaign_cfg(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    faults: &FaultPlan,
    engine: &EngineConfig,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_cfg_cancellable(config, library, trace, days, faults, engine, None)
}

/// [`run_campaign_cfg`] with a cooperative [`CancelToken`]: the event
/// loop polls it at every event boundary and returns
/// [`CampaignError::Cancelled`] once it is raised. `None` behaves
/// exactly like [`run_campaign_cfg`]. The campaign service uses this so
/// a `cancel` request can reclaim the shared pool mid-campaign instead
/// of waiting out a multi-month simulation.
pub fn run_campaign_cfg_cancellable(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    faults: &FaultPlan,
    engine: &EngineConfig,
    cancel: Option<&CancelToken>,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_cfg_spill(config, library, trace, days, faults, engine, cancel, None)
}

/// [`run_campaign_cfg_cancellable`] with an out-of-core sample path:
/// when `spill` is given, every finalized [`SystemSample`] is drained
/// into the sink as the campaign runs (the interval reference stays
/// resident) and the returned [`CampaignResult::samples`] is empty —
/// the sink holds the series. Year-scale campaigns thus aggregate in
/// bounded memory; an [`crate::result::CampaignResult`]-sized history
/// never exists. Sink failures abort the run with
/// [`CampaignError::Spill`]. `None` behaves exactly like
/// [`run_campaign_cfg_cancellable`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_cfg_spill(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    faults: &FaultPlan,
    engine: &EngineConfig,
    cancel: Option<&CancelToken>,
    spill: Option<&mut dyn SampleSink>,
) -> Result<CampaignResult, CampaignError> {
    engine.apply();
    match engine.threads {
        Some(threads) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| CampaignError::ThreadPool(e.to_string()))?;
            pool.install(|| {
                run_campaign_inner(config, library, trace, days, faults, engine, cancel, spill)
            })
        }
        None => run_campaign_inner(config, library, trace, days, faults, engine, cancel, spill),
    }
}

/// Publishes the newest sweep's top-down bottleneck split as live
/// gauges (percent of cycles per category). Gated on recording so the
/// hot loop pays nothing when tracing is off; gauges never feed back
/// into engine state, so bit-identity between engines is unaffected.
fn publish_toplev_gauges(selection: &CounterSelection, daemon: &Daemon) {
    if !sp2_trace::recording() {
        return;
    }
    let Some(sample) = daemon.samples().last() else {
        return;
    };
    let Some(split) = BottleneckSplit::from_delta(selection, &sample.total) else {
        return;
    };
    crate::metrics::TOPLEV_DISPATCH.set(split.dispatch * 100.0);
    crate::metrics::TOPLEV_FPU.set(split.fpu * 100.0);
    crate::metrics::TOPLEV_DCACHE_TLB.set(split.dcache_tlb * 100.0);
    crate::metrics::TOPLEV_ICACHE.set(split.icache * 100.0);
    crate::metrics::TOPLEV_IO_WAIT.set(split.io_wait * 100.0);
}

#[allow(clippy::too_many_arguments)]
fn run_campaign_inner(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    faults: &FaultPlan,
    engine_cfg: &EngineConfig,
    cancel: Option<&CancelToken>,
    mut spill: Option<&mut dyn SampleSink>,
) -> Result<CampaignResult, CampaignError> {
    let _campaign_span = crate::metrics::CAMPAIGN.span();
    let _campaign_ev = sp2_trace::events::span("campaign", "phase");
    crate::metrics::RAYON_THREADS.set(rayon::current_num_threads() as f64);
    let horizon = days as f64 * 86_400.0;
    let selection = config.selection.clone();
    let handler: KernelSignature = page_fault_signature(&config.machine);
    let daemon_sig = daemon_sample_signature(&config.machine);
    let idle_plan = ActivityPlan::idle(&daemon_sig, &config.paging);

    let mut engine = Engine::new(engine_cfg.engine, &selection, config.nodes);
    for n in 0..config.nodes {
        engine.set_activity(n, 0.0, Some(idle_plan.clone()));
    }

    let mut pbs = Pbs::new(config.nodes).with_drain_threshold(config.drain_threshold);
    let mut daemon = Daemon::new(selection.clone(), config.nodes);
    let mut running: HashMap<JobId, RunningJob> = HashMap::new();
    let mut job_reports: Vec<JobCounterReport> = Vec::new();
    let mut pbs_records: Vec<JobRecord> = Vec::new();
    let mut down = vec![false; config.nodes];
    let mut attempts: Vec<u32> = vec![0; trace.len()];
    let mut summary = FaultSummary {
        enabled: !faults.is_empty(),
        ..FaultSummary::default()
    };

    let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Reverse<Scheduled>>, seq: &mut u64, t: f64, ev: Ev| {
        *seq += 1;
        heap.push(Reverse(Scheduled { t, seq: *seq, ev }));
    };

    for (i, job) in trace.iter().enumerate() {
        if job.submit_s < horizon {
            push(&mut heap, &mut seq, job.submit_s, Ev::Submit(i));
        }
    }
    let mut sweep = 0u64;
    let mut t_sample = SAMPLE_INTERVAL_S;
    while t_sample <= horizon {
        sweep += 1;
        push(&mut heap, &mut seq, t_sample, Ev::Sample(sweep));
        t_sample += SAMPLE_INTERVAL_S;
    }
    for outage in faults.outages() {
        if outage.start < horizon {
            push(&mut heap, &mut seq, outage.start, Ev::NodeDown(outage.node));
            push(&mut heap, &mut seq, outage.end, Ev::NodeUp(outage.node));
            summary.outages += 1;
        }
    }
    summary.node_downtime_s = faults.node_downtime_s(horizon);

    // Baseline daemon pass at t=0 (flight-recorder sweep 0 only
    // baselines the interval series, exactly like the daemon itself).
    daemon.collect(
        &EngineSource {
            engine: &engine,
            down: &down,
        },
        0.0,
    );
    sp2_trace::recorder::on_sweep(0, 0.0);

    let mut scratch = JobScratch::default();

    // Start any jobs PBS can place at `now`.
    let start_jobs = |now: f64,
                      pbs: &mut Pbs,
                      engine: &mut Engine,
                      running: &mut HashMap<JobId, RunningJob>,
                      heap: &mut BinaryHeap<Reverse<Scheduled>>,
                      seq: &mut u64,
                      attempts: &[u32],
                      trace: &[SubmittedJob],
                      scratch: &mut JobScratch| {
        let _sched_span = crate::metrics::SCHEDULE.span();
        let _sched_ev = sp2_trace::events::span("schedule", "phase");
        for started in pbs.schedule(now) {
            let submitted = &trace[started.spec.payload as usize];
            if sp2_trace::recording() {
                // Queue wait in simulated time; a requeued attempt's wait
                // began at the kill, which the kill site records instead.
                let attempt = attempts[started.spec.payload as usize];
                if attempt == 0 {
                    sp2_trace::events::sim_span(
                        format!("job {} wait", started.spec.id.0),
                        "pbs",
                        submitted.submit_s,
                        now,
                    );
                }
            }
            let program = library.program(submitted.program);
            let plan = ActivityPlan::for_job(
                program,
                library.signature_of(submitted.program),
                &handler,
                &config.switch,
                &config.paging,
                config.machine.memory_bytes,
                started.spec.nodes,
            );
            let mut prologue = scratch.prologues.pop().unwrap_or_default();
            engine.snapshot_many_at(&started.nodes, now, &mut prologue, &mut scratch.snaps);
            engine.set_activity_many(&started.nodes, now, plan);
            // PBS enforces the walltime limit: a job that would run past
            // its request is killed at the limit (no checkpointing on
            // the SP2, so killed means gone).
            let attempt = attempts[started.spec.payload as usize];
            let finish_t = now + submitted.residency_s();
            push(heap, seq, finish_t, Ev::Finish(started.spec.id, attempt));
            running.insert(
                started.spec.id,
                RunningJob {
                    spec: started.spec,
                    nodes: started.nodes,
                    start: now,
                    attempt,
                    prologue,
                },
            );
        }
    };

    // Advance-tick chunk size, hoisted out of the event loop: the node
    // count is fixed for the whole campaign, so deriving it (and
    // allocating a chunk list) on every sample tick was pure waste.
    let advance_chunk = config
        .nodes
        .div_ceil(rayon::current_num_threads().max(1))
        .max(1);

    // The sweep batch, reused across samples: `collect_batch` moves each
    // fresh snapshot in as a node's new baseline and leaves the retired
    // one behind, so after the first two sweeps the sampling pass
    // recycles the same buffers and allocates nothing.
    let mut sweep_batch: Vec<Option<CounterSnapshot>> = vec![None; config.nodes];

    // Cluster-interval fast-forward: the batch engine may elide runs of
    // steady sweeps (see the Sample arm). The reference engine never
    // does — it is the baseline the elision is proven against — and
    // `--no-fast-forward` forces full stepping for A/B runs, the same
    // switch that governs the kernel-level fast-forward. The switch is
    // read from the config when set (one read per campaign, immune to
    // other threads flipping the process global mid-run) and from the
    // global otherwise.
    let steady_ff = engine_cfg.engine == EngineKind::Batch
        && engine_cfg
            .fast_forward
            .unwrap_or_else(sp2_power2::fast_forward_enabled);

    while let Some(Reverse(Scheduled { t, ev, .. })) = heap.pop() {
        if t > horizon {
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(CampaignError::Cancelled);
        }
        crate::metrics::EVENTS.inc();
        match ev {
            Ev::Submit(i) => {
                let job = &trace[i];
                pbs.submit(JobSpec {
                    id: JobId(i as u64),
                    nodes: job.nodes,
                    requested_walltime_s: job.requested_walltime_s,
                    payload: i as u64,
                })?;
                start_jobs(
                    t,
                    &mut pbs,
                    &mut engine,
                    &mut running,
                    &mut heap,
                    &mut seq,
                    &attempts,
                    trace,
                    &mut scratch,
                );
            }
            Ev::Finish(id, attempt) => {
                if running.get(&id).map(|j| j.attempt) != Some(attempt) {
                    // Stale: this attempt was killed by a node failure.
                    continue;
                }
                let Some(mut job) = running.remove(&id) else {
                    continue;
                };
                engine.snapshot_many_at(&job.nodes, t, &mut scratch.epilogue, &mut scratch.snaps);
                engine.set_activity_many(&job.nodes, t, idle_plan.clone());
                job_reports.push(JobCounterReport::from_snapshots(
                    &selection,
                    job.spec.id.0,
                    job.start,
                    t,
                    &job.prologue,
                    &scratch.epilogue,
                ));
                scratch.snaps.append(&mut job.prologue);
                scratch.prologues.push(job.prologue);
                let epilogue_drain = scratch.epilogue.drain(..);
                scratch.snaps.extend(epilogue_drain);
                pbs.finish(id, t)?;
                if sp2_trace::recording() {
                    sp2_trace::events::sim_span(format!("job {} run", id.0), "pbs", job.start, t);
                    sp2_trace::events::sim_instant(format!("job {} epilogue", id.0), "pbs", t);
                }
                pbs_records.push(JobRecord {
                    id: job.spec.id.0,
                    nodes: job.spec.nodes,
                    start: job.start,
                    end: t,
                    outcome: JobOutcome::Completed,
                });
                start_jobs(
                    t,
                    &mut pbs,
                    &mut engine,
                    &mut running,
                    &mut heap,
                    &mut seq,
                    &attempts,
                    trace,
                    &mut scratch,
                );
            }
            Ev::Sample(k) => {
                if faults.sweep_missed(k) {
                    summary.missed_sweeps += 1;
                    continue;
                }
                if faults.restart_before_sweep(k) {
                    daemon.restart();
                    summary.daemon_restarts += 1;
                }
                // Gather the steady run: this sweep plus every Sample
                // event ahead of it on the heap that keeps the cadence
                // (next index, no fault interaction of its own), peeking
                // *past* events that provably leave node state alone.
                // Non-mutating events are executed here at their correct
                // timestamps — PBS bookkeeping, metrics, fault
                // accounting all happen exactly as they would stepping —
                // so between two gathered sweeps no job, outage, or
                // glitch touches any node, which is the precondition for
                // the cluster-interval fast-forward below. The
                // classification (see DESIGN §4c):
                //   - Submit that only queues (`Pbs::would_start` is
                //     false): submitted here; starts nothing.
                //   - Finish for a superseded attempt: dropped here,
                //     exactly as the stale check in the Finish arm would.
                //   - NodeDown for an already-down node / NodeUp for an
                //     already-up node: dropped, as their arms would.
                // A Submit that *would* start a job still ends the run,
                // but the submit itself is absorbed and the schedule
                // deferred to after the gathered window is applied —
                // the gathered sweeps all precede it in heap order, so
                // this reproduces the reference event order exactly.
                let mut run: Vec<(u64, f64)> = vec![(k, t)];
                let max_run = if spill.is_some() {
                    engine_cfg.spill_max_run
                } else {
                    usize::MAX
                };
                let mut deferred_submit: Option<f64> = None;
                if steady_ff {
                    while run.len() < max_run {
                        let Some(&Reverse(next)) = heap.peek() else {
                            break;
                        };
                        if next.t > horizon {
                            break;
                        }
                        match next.ev {
                            Ev::Sample(kk) => {
                                let prev_k = run[run.len() - 1].0;
                                if kk != prev_k + 1
                                    || faults.sweep_missed(kk)
                                    || faults.restart_before_sweep(kk)
                                    || !faults.glitched_nodes(kk).is_empty()
                                {
                                    break;
                                }
                                crate::metrics::EVENTS.inc();
                                run.push((kk, next.t));
                                heap.pop();
                            }
                            Ev::Finish(id, attempt) => {
                                if running.get(&id).map(|j| j.attempt) == Some(attempt) {
                                    break; // live finish: real node-state mutation
                                }
                                crate::metrics::EVENTS.inc();
                                heap.pop();
                            }
                            Ev::NodeDown(node) => {
                                if !down[node] {
                                    break; // real outage
                                }
                                crate::metrics::EVENTS.inc();
                                heap.pop();
                            }
                            Ev::NodeUp(node) => {
                                if down[node] {
                                    break; // real recovery
                                }
                                crate::metrics::EVENTS.inc();
                                heap.pop();
                            }
                            Ev::Submit(i) => {
                                crate::metrics::EVENTS.inc();
                                heap.pop();
                                let job = &trace[i];
                                pbs.submit(JobSpec {
                                    id: JobId(i as u64),
                                    nodes: job.nodes,
                                    requested_walltime_s: job.requested_walltime_s,
                                    payload: i as u64,
                                })?;
                                if pbs.would_start() {
                                    // Starting now would advance nodes
                                    // past the gathered sweep times;
                                    // apply the window first, then
                                    // schedule at the submit's own
                                    // timestamp.
                                    deferred_submit = Some(next.t);
                                    break;
                                }
                                start_jobs(
                                    next.t,
                                    &mut pbs,
                                    &mut engine,
                                    &mut running,
                                    &mut heap,
                                    &mut seq,
                                    &attempts,
                                    trace,
                                    &mut scratch,
                                );
                            }
                        }
                    }
                }
                let active = down.iter().filter(|&&d| !d).count();
                // A glitched first sweep may leave truncated baselines
                // behind without tripping the plausibility check (early
                // in a campaign the truncated delta can still be under
                // PLAUSIBLE_DELTA_MAX), which would poison the template
                // below — push the clone point one sweep further out so
                // the template's baselines come from an untruncated
                // snapshot.
                let min_template = if faults.glitched_nodes(k).is_empty() {
                    2
                } else {
                    3
                };
                let mut i = 0;
                while i < run.len() {
                    let (kk, tt) = run[i];
                    // A run sweep at i >= 2 can clone run[i-1]'s sample:
                    // run[i-1] sits one clean, exactly-900 s interval
                    // after run[i-2], which advanced every node — so its
                    // per-node deltas are pure one-interval deltas, and
                    // every later sweep in the run repeats them exactly.
                    // Full coverage (no anomalies, no re-baselining
                    // nodes) makes the daemon side a pure replay too.
                    // Scale-apply the lane deltas, replay the sample
                    // with only the timestamp changed: bit-identical to
                    // stepping (the equivalence suite runs with this
                    // path on).
                    let steady = i >= min_template
                        && daemon
                            .samples()
                            .last()
                            .is_some_and(|s| s.anomalies == 0 && s.nodes_sampled == active);
                    if steady && run.len() - i >= 2 {
                        let Engine::Batch(bank) = &mut engine else {
                            break; // unreachable: runs are only gathered for the batch engine
                        };
                        let _ff_span = crate::metrics::ADVANCE.span();
                        let _ff_ev = sp2_trace::events::span("cluster fast-forward", "phase");
                        let steps = (run.len() - i) as u64;
                        crate::metrics::SWEEPS.add(steps);
                        crate::metrics::SWEEPS_ELIDED.add(steps);
                        let t_final = run[run.len() - 1].1;
                        bank.advance_steady(SAMPLE_INTERVAL_S, steps, t_final);
                        for (n, slot) in sweep_batch.iter_mut().enumerate() {
                            if down[n] {
                                *slot = None;
                                continue;
                            }
                            match slot.take() {
                                Some(mut s) => {
                                    bank.snapshot_into(n, &mut s);
                                    *slot = Some(s);
                                }
                                None => *slot = Some(bank.snapshot(n)),
                            }
                        }
                        let times: Vec<f64> = run[i..].iter().map(|&(_, t2)| t2).collect();
                        daemon.fast_forward_steady(&times, &mut sweep_batch);
                        // Replayed sweeps share one steady-state delta,
                        // so a single gauge update covers the whole run.
                        publish_toplev_gauges(&selection, &daemon);
                        for &(k2, t2) in &run[i..] {
                            sp2_trace::recorder::on_sweep(k2, t2);
                        }
                        break;
                    }
                    // Batched sampling pass: advance every node's
                    // counters to `tt` (the engine parallelizes over its
                    // pool when the bank is big enough), then snapshot
                    // serially in index order. Down nodes are skipped
                    // exactly as the real cron script skipped
                    // unavailable nodes; glitched nodes return their
                    // raw 32-bit registers. The daemon folds the batch
                    // in index order, so the sample is bit-identical at
                    // any thread count and under either engine.
                    {
                        let advance_span = crate::metrics::ADVANCE.span();
                        let _advance_ev = sp2_trace::events::span("advance", "phase");
                        engine.advance_all(tt, advance_chunk);
                        drop(advance_span);
                    }
                    let _sample_span = crate::metrics::SAMPLE.span();
                    let _sample_ev = sp2_trace::events::span("sample", "phase");
                    let glitched = faults.glitched_nodes(kk);
                    for (n, slot) in sweep_batch.iter_mut().enumerate() {
                        if down[n] {
                            *slot = None;
                            continue;
                        }
                        let mut snap = match slot.take() {
                            Some(mut s) => {
                                engine.snapshot_into(n, &mut s);
                                s
                            }
                            None => engine.snapshot(n),
                        };
                        if glitched.contains(&n) {
                            snap = snap.truncate_to_hardware();
                        }
                        *slot = Some(snap);
                    }
                    summary.glitches += glitched.iter().filter(|&&g| !down[g]).count();
                    daemon.collect_batch(&mut sweep_batch, tt);
                    crate::metrics::SWEEPS.inc();
                    publish_toplev_gauges(&selection, &daemon);
                    sp2_trace::recorder::on_sweep(kk, tt);
                    i += 1;
                }
                // Out-of-core path: everything before the newest sample
                // is final (samples only ever append), so it can leave
                // the process now. The newest one stays — it is the
                // interval reference for the next sweep and the
                // fast-forward's replay template.
                if let Some(sink) = spill.as_mut() {
                    daemon
                        .drain_samples(&mut **sink, 1)
                        .map_err(|e| CampaignError::Spill(e.to_string()))?;
                }
                // A gather-absorbed Submit whose job fits runs its
                // schedule pass now, after the window it trailed on the
                // heap has been applied — same order the reference loop
                // would process it in.
                if let Some(t_sub) = deferred_submit {
                    start_jobs(
                        t_sub,
                        &mut pbs,
                        &mut engine,
                        &mut running,
                        &mut heap,
                        &mut seq,
                        &attempts,
                        trace,
                        &mut scratch,
                    );
                }
            }
            Ev::NodeDown(node) => {
                if down[node] {
                    continue;
                }
                let fault_span = crate::metrics::FAULT_SWEEP.span();
                let fault_ev = sp2_trace::events::span("fault", "phase");
                if sp2_trace::recording() {
                    sp2_trace::events::sim_instant(format!("node {node} down"), "fault", t);
                }
                down[node] = true;
                // The node crashes: counters freeze at `t` (they advanced
                // while the job computed up to the crash).
                engine.set_activity(node, t, None);
                let victim = pbs.take_node_offline(node);
                if let Some(id) = victim {
                    let killed = pbs.kill(id, t)?;
                    if let Some(mut job) = running.remove(&id) {
                        // Surviving siblings drop back to idle; no
                        // epilogue runs for a killed job — its prologue
                        // buffers go straight back to the scratch pool.
                        scratch.snaps.append(&mut job.prologue);
                        scratch.prologues.push(job.prologue);
                        for &n in &job.nodes {
                            if n != node && !down[n] {
                                engine.set_activity(n, t, Some(idle_plan.clone()));
                            }
                        }
                        let requeued = job.attempt + 1 < MAX_JOB_ATTEMPTS;
                        if sp2_trace::recording() {
                            sp2_trace::events::sim_span(
                                format!("job {} run", id.0),
                                "pbs",
                                job.start,
                                t,
                            );
                            let marker = if requeued { "requeue" } else { "kill" };
                            sp2_trace::events::sim_instant(
                                format!("job {} {marker}", id.0),
                                "pbs",
                                t,
                            );
                        }
                        summary.jobs_killed += 1;
                        pbs_records.push(JobRecord {
                            id: job.spec.id.0,
                            nodes: job.spec.nodes,
                            start: job.start,
                            end: t,
                            outcome: JobOutcome::NodeFailure { requeued },
                        });
                        if requeued {
                            attempts[id.0 as usize] += 1;
                            summary.jobs_requeued += 1;
                            pbs.requeue(killed.spec);
                        }
                    }
                }
                drop(fault_ev);
                drop(fault_span);
                start_jobs(
                    t,
                    &mut pbs,
                    &mut engine,
                    &mut running,
                    &mut heap,
                    &mut seq,
                    &attempts,
                    trace,
                    &mut scratch,
                );
            }
            Ev::NodeUp(node) => {
                if !down[node] {
                    continue;
                }
                let fault_span = crate::metrics::FAULT_SWEEP.span();
                let fault_ev = sp2_trace::events::span("fault", "phase");
                if sp2_trace::recording() {
                    sp2_trace::events::sim_instant(format!("node {node} up"), "fault", t);
                }
                down[node] = false;
                // Repair and reboot: the monitor state did not survive,
                // so the daemon will re-baseline this node.
                engine.reboot(node, t);
                engine.set_activity(node, t, Some(idle_plan.clone()));
                pbs.bring_node_online(node);
                drop(fault_ev);
                drop(fault_span);
                start_jobs(
                    t,
                    &mut pbs,
                    &mut engine,
                    &mut running,
                    &mut heap,
                    &mut seq,
                    &attempts,
                    trace,
                    &mut scratch,
                );
            }
        }
    }

    // Close out still-running jobs at the horizon (partial records for
    // utilization accounting; no epilogue report — the epilogue never
    // ran, exactly as on a machine powered down mid-job).
    let mut ids: Vec<JobId> = running.keys().copied().collect();
    ids.sort(); // HashMap iteration order is nondeterministic
    for id in ids {
        let Some(job) = running.remove(&id) else {
            continue;
        };
        pbs.finish(id, horizon)?;
        if sp2_trace::recording() {
            sp2_trace::events::sim_span(format!("job {} run", id.0), "pbs", job.start, horizon);
            sp2_trace::events::sim_instant(format!("job {} horizon", id.0), "pbs", horizon);
        }
        pbs_records.push(JobRecord {
            id: job.spec.id.0,
            nodes: job.spec.nodes,
            start: job.start,
            end: horizon,
            outcome: JobOutcome::Horizon,
        });
    }

    crate::metrics::SIMULATED_S.add(horizon as u64);
    let samples = match spill {
        Some(sink) => {
            // Flush the tail (including the resident interval
            // reference); the sink holds the whole series, the result
            // carries none of it.
            daemon
                .drain_samples(sink, 0)
                .map_err(|e| CampaignError::Spill(e.to_string()))?;
            Vec::new()
        }
        None => daemon.samples().to_vec(),
    };
    Ok(CampaignResult {
        days,
        node_count: config.nodes,
        machine: config.machine,
        selection,
        samples,
        job_reports,
        pbs_records,
        faults: summary,
    })
}

/// Runs the campaign on a dedicated pool of `threads` worker threads
/// (`0` means one thread per available core).
///
/// The event loop itself is inherently serial — events are causally
/// ordered — but each 15-minute sampling pass advances all nodes in
/// parallel, which dominates the loop's work on large machines. The
/// result is bit-identical to [`run_campaign`] at any thread count.
pub fn run_campaign_with_threads(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    trace: &[SubmittedJob],
    days: u32,
    threads: usize,
    faults: &FaultPlan,
) -> Result<CampaignResult, CampaignError> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| CampaignError::ThreadPool(e.to_string()))?;
    pool.install(|| run_campaign(config, library, trace, days, faults))
}

/// Runs `replications` independent campaigns whose traces derive from
/// `base_spec` with per-replication seeds (`seed + index`), sharded
/// across the rayon pool. Every replication replays the same `faults`
/// plan, so replication spread isolates workload variance from fault
/// variance.
///
/// Replications are embarrassingly parallel: each generates its own
/// submission trace and replays it on its own simulated machine. The
/// merge is deterministic — results come back ordered by replication
/// index regardless of how the shards were scheduled — so serial and
/// parallel runs produce bit-identical result vectors.
pub fn run_replications(
    config: &ClusterConfig,
    library: &WorkloadLibrary,
    mix: &JobMix,
    base_spec: &CampaignSpec,
    replications: usize,
    faults: &FaultPlan,
) -> Result<Vec<CampaignResult>, CampaignError> {
    (0..replications as u64)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|rep| {
            let spec = CampaignSpec {
                seed: base_spec.seed.wrapping_add(rep),
                ..*base_spec
            };
            let jobs = sp2_workload::trace::generate(&spec, mix, library);
            // The default (batch) engine: bit-identical to the reference
            // and much faster, which compounds across replications.
            run_campaign_inner(
                config,
                library,
                &jobs,
                spec.days,
                faults,
                &EngineConfig::default(),
                None,
                None,
            )
        })
        .collect::<Vec<Result<CampaignResult, CampaignError>>>()
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2_workload::{trace, CampaignSpec, JobMix};

    /// A small but real campaign used by several tests.
    fn small_campaign() -> CampaignResult {
        small_campaign_with(&FaultPlan::none())
    }

    fn small_campaign_with(faults: &FaultPlan) -> CampaignResult {
        let config = ClusterConfig::default();
        let library = WorkloadLibrary::build(&config.machine, 42);
        let spec = CampaignSpec {
            days: 7,
            seed: 7,
            ..Default::default()
        };
        let jobs = trace::generate(&spec, &JobMix::nas(), &library);
        run_campaign(&config, &library, &jobs, spec.days, faults).expect("campaign runs")
    }

    #[test]
    fn campaign_produces_all_datasets() {
        let r = small_campaign();
        assert_eq!(r.days, 7);
        assert_eq!(r.node_count, 144);
        // 7 days of 15-minute samples plus the baseline pass.
        assert_eq!(r.samples.len(), 7 * 96 + 1);
        assert!(!r.job_reports.is_empty(), "jobs must have completed");
        assert!(r.pbs_records.len() >= r.job_reports.len());
        assert!(!r.faults.enabled, "no faults were injected");
        assert!(r.pbs_records.iter().all(|rec| rec.outcome
            != JobOutcome::NodeFailure { requeued: true }
            && rec.outcome != JobOutcome::NodeFailure { requeued: false }));
    }

    #[test]
    fn sampled_rates_are_plausible() {
        let r = small_campaign();
        // Machine-wide Mflops per sample: 0 ≤ x ≤ 144 x peak.
        let peak = 144.0 * MachineConfig::nas_sp2().peak_mflops();
        for s in &r.samples {
            assert!(s.rates.mflops >= 0.0);
            assert!(s.rates.mflops < peak, "sample exceeds machine peak");
        }
        let busy_samples = r.samples.iter().filter(|s| s.rates.mflops > 100.0).count();
        assert!(busy_samples > 50, "the machine must actually compute");
    }

    #[test]
    fn job_reports_match_pbs_records() {
        let r = small_campaign();
        for report in &r.job_reports {
            let rec = r
                .pbs_records
                .iter()
                .find(|rec| rec.id == report.job_id)
                .expect("every epilogue has an accounting record");
            assert_eq!(rec.nodes, report.nodes);
            assert!((rec.start - report.start).abs() < 1e-6);
            assert!((rec.end - report.end).abs() < 1e-6);
        }
    }

    #[test]
    fn determinism() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a.samples.len(), b.samples.len());
        assert_eq!(a.job_reports.len(), b.job_reports.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.total, y.total);
        }
    }

    #[test]
    fn dedicated_nodes_never_double_booked() {
        // Indirectly verified: PBS enforces it; here we check that no
        // report ever spans more nodes than requested.
        let r = small_campaign();
        for report in &r.job_reports {
            assert!(report.nodes >= 1 && report.nodes <= 144);
        }
    }

    #[test]
    fn faulted_campaign_is_deterministic_and_degraded() {
        let plan = FaultPlan::generate(144, 7, 1.0, 1996);
        let a = small_campaign_with(&plan);
        let b = small_campaign_with(&plan);
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.total, y.total);
            assert_eq!(x.nodes_sampled, y.nodes_sampled);
        }
        assert!(a.faults.enabled);
        assert_eq!(a.faults, b.faults);
        // The plan injected real degradation.
        assert!(a.faults.outages > 0);
        assert!(a.samples.len() < 7 * 96 + 1, "missed sweeps drop samples");
        assert!(
            a.samples.iter().any(|s| s.has_gap()),
            "outages must leave coverage gaps"
        );
    }

    #[test]
    fn node_failures_kill_and_requeue_jobs() {
        let plan = FaultPlan::generate(144, 7, 2.0, 11);
        let r = small_campaign_with(&plan);
        assert!(r.faults.jobs_killed > 0, "a 2x fault rate must hit jobs");
        assert!(r.faults.jobs_requeued > 0);
        assert!(r.faults.jobs_requeued <= r.faults.jobs_killed);
        let killed = r
            .pbs_records
            .iter()
            .filter(|rec| matches!(rec.outcome, JobOutcome::NodeFailure { .. }))
            .count();
        assert_eq!(killed, r.faults.jobs_killed);
        // A requeued job eventually reappears: some id has both a
        // NodeFailure record and a later Completed/Horizon record.
        let reran = r.pbs_records.iter().any(|rec| {
            matches!(rec.outcome, JobOutcome::NodeFailure { requeued: true })
                && r.pbs_records
                    .iter()
                    .any(|r2| r2.id == rec.id && r2.start >= rec.end && r2.outcome != rec.outcome)
        });
        assert!(reran, "requeued jobs must get another attempt");
    }

    #[test]
    fn batch_engine_matches_reference_bitwise() {
        // The full equivalence suite (tests/engine_equivalence.rs) runs
        // larger campaigns across thread counts; this is the fast smoke
        // version: one small faulted campaign, both engines, every
        // dataset compared with `==` (u64 counters and exact f64s).
        let config = ClusterConfig::builder()
            .nodes(24)
            .drain_threshold(12)
            .build()
            .expect("valid config");
        let library = WorkloadLibrary::build(&config.machine, 42);
        let spec = CampaignSpec {
            days: 2,
            seed: 3,
            ..Default::default()
        };
        // The NAS mix includes jobs wider than this scaled-down machine;
        // keep the ones that fit (PBS rejects oversized requests).
        let jobs: Vec<_> = trace::generate(&spec, &JobMix::nas(), &library)
            .into_iter()
            .filter(|j| j.nodes as usize <= 24)
            .collect();
        let plan = FaultPlan::generate(24, 2, 1.5, 9);
        let reference =
            run_campaign(&config, &library, &jobs, spec.days, &plan).expect("reference runs");
        let batch = run_campaign_cfg(
            &config,
            &library,
            &jobs,
            spec.days,
            &plan,
            &EngineConfig::default(),
        )
        .expect("batch runs");
        assert_eq!(reference.samples, batch.samples);
        assert_eq!(reference.job_reports, batch.job_reports);
        assert_eq!(reference.pbs_records, batch.pbs_records);
        assert_eq!(reference.faults, batch.faults);
    }

    #[test]
    fn spilled_campaign_matches_resident_samples_bitwise() {
        let config = ClusterConfig::builder()
            .nodes(16)
            .drain_threshold(8)
            .build()
            .expect("valid config");
        let library = WorkloadLibrary::build(&config.machine, 42);
        let spec = CampaignSpec {
            days: 2,
            seed: 3,
            ..Default::default()
        };
        let jobs: Vec<_> = trace::generate(&spec, &JobMix::nas(), &library)
            .into_iter()
            .filter(|j| j.nodes as usize <= 16)
            .collect();
        let resident = run_campaign_cfg(
            &config,
            &library,
            &jobs,
            spec.days,
            &FaultPlan::none(),
            &EngineConfig::default(),
        )
        .expect("resident runs");
        let mut spilled: Vec<sp2_rs2hpm::SystemSample> = Vec::new();
        let r = run_campaign_cfg_spill(
            &config,
            &library,
            &jobs,
            spec.days,
            &FaultPlan::none(),
            &EngineConfig::default(),
            None,
            Some(&mut spilled),
        )
        .expect("spilling run succeeds");
        assert!(r.samples.is_empty(), "the sink holds the series");
        assert_eq!(spilled, resident.samples, "spill is bit-identical");
        assert_eq!(r.job_reports, resident.job_reports);
        assert_eq!(r.pbs_records, resident.pbs_records);
    }

    #[test]
    fn glitches_surface_as_anomalies_not_garbage_rates() {
        let plan = FaultPlan::generate(144, 7, 2.0, 5);
        assert!(plan.glitch_count() > 0);
        let r = small_campaign_with(&plan);
        let anomalies: usize = r.samples.iter().map(|s| s.anomalies).sum();
        assert!(anomalies > 0, "glitches must be detected");
        let peak = 144.0 * MachineConfig::nas_sp2().peak_mflops();
        for s in &r.samples {
            assert!(
                s.rates.mflops < peak,
                "a wrapped delta leaked into the rates"
            );
        }
    }
}
