//! The paging model: memory oversubscription → system-mode time.
//!
//! §6 of the paper: jobs requesting more than 64 nodes showed *system*
//! FXU/ICU instruction counts exceeding their user counts; "evidently
//! these processes were paging data, and discussions with the users
//! confirmed this suspicion". The mechanism on AIX: automatic arrays
//! oversubscribe node memory, the VMM's page-replacement daemon and
//! fault handlers burn CPU in system mode, and hard faults wait on disk.
//!
//! We model the *time split* of a wall-clock second on a paging node:
//! a system share (the measured page-fault-handler signature runs for
//! that share), an I/O-wait share (no instructions, disk DMA traffic),
//! and the remaining user share (the job's own signature runs for it).

use serde::{Deserialize, Serialize};

/// Parameters of the oversubscription → time-split map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PagingModel {
    /// System-share slope per unit of oversubscription excess.
    pub sys_slope: f64,
    /// Cap on the system share.
    pub sys_cap: f64,
    /// I/O-wait slope per unit of oversubscription excess.
    pub io_slope: f64,
    /// Cap on the I/O-wait share.
    pub io_cap: f64,
    /// Floor on the user share (a paging job still makes *some* progress).
    pub user_floor: f64,
    /// Background system share on a healthy node (clock ticks, daemons).
    pub base_sys: f64,
    /// Disk bandwidth consumed by hard paging at full I/O share, B/s.
    pub page_disk_bandwidth: f64,
}

impl Default for PagingModel {
    fn default() -> Self {
        PagingModel {
            sys_slope: 1.0,
            sys_cap: 0.60,
            io_slope: 0.5,
            io_cap: 0.25,
            user_floor: 0.06,
            base_sys: 0.01,
            page_disk_bandwidth: 4.0e6,
        }
    }
}

/// The time split of one wall second on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSplit {
    /// Fraction running the job's own (user-mode) code.
    pub user: f64,
    /// Fraction in the VMM fault path (system mode).
    pub system: f64,
    /// Fraction stalled on paging disk I/O.
    pub io_wait: f64,
}

impl PagingModel {
    /// Computes the time split for a job with memory oversubscription
    /// ratio `oversub` (working set / node memory) that additionally
    /// loses `comm_frac` of wall time to message passing.
    pub fn split(&self, oversub: f64, comm_frac: f64) -> TimeSplit {
        let excess = (oversub - 1.0).max(0.0);
        let system = (self.base_sys + self.sys_slope * excess).min(self.sys_cap);
        let io_wait = (self.io_slope * excess).min(self.io_cap);
        let user = (1.0 - system - io_wait - comm_frac.clamp(0.0, 0.9)).max(self.user_floor);
        TimeSplit {
            user,
            system,
            io_wait,
        }
    }

    /// Paging disk traffic (bytes/second each way) at a given I/O share.
    pub fn paging_disk_rate(&self, io_wait: f64) -> f64 {
        self.page_disk_bandwidth * (io_wait / self.io_cap.max(1e-9)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_job_is_almost_all_user() {
        let m = PagingModel::default();
        let s = m.split(0.7, 0.0);
        assert!(s.user > 0.95);
        assert!(s.system < 0.02);
        assert_eq!(s.io_wait, 0.0);
    }

    #[test]
    fn splits_sum_at_most_one() {
        let m = PagingModel::default();
        for oversub in [0.5, 1.0, 1.2, 1.5, 2.0, 3.0] {
            for comm in [0.0, 0.1, 0.5] {
                let s = m.split(oversub, comm);
                assert!(s.user + s.system + s.io_wait <= 1.0 + m.user_floor + 1e-9);
                assert!(s.user >= m.user_floor - 1e-12);
            }
        }
    }

    #[test]
    fn oversubscription_monotonically_starves_user_time() {
        let m = PagingModel::default();
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let oversub = 1.0 + i as f64 * 0.1;
            let s = m.split(oversub, 0.0);
            assert!(s.user <= prev + 1e-12);
            prev = s.user;
        }
    }

    #[test]
    fn heavy_paging_reaches_the_caps() {
        let m = PagingModel::default();
        let s = m.split(2.5, 0.0);
        assert!((s.system - m.sys_cap).abs() < 1e-12);
        assert!((s.io_wait - m.io_cap).abs() < 1e-12);
        assert!((s.user - (1.0 - m.sys_cap - m.io_cap)).abs() < 1e-9);
    }

    #[test]
    fn system_over_user_exceeds_one_when_paging_hard() {
        // The §6 signature: with our handler ≈0.5 FXU/cycle and the CFD
        // kernel ≈1.0 FXU/cycle, sys instr > user instr needs
        // system_share × 0.5 > user_share × 1.0.
        let m = PagingModel::default();
        let s = m.split(1.8, 0.1);
        assert!(
            s.system * 0.5 > s.user * 1.0,
            "heavy oversubscription must flip the system/user balance ({s:?})"
        );
    }

    #[test]
    fn disk_rate_scales_with_io_share() {
        let m = PagingModel::default();
        assert_eq!(m.paging_disk_rate(0.0), 0.0);
        let half = m.paging_disk_rate(m.io_cap / 2.0);
        let full = m.paging_disk_rate(m.io_cap);
        assert!((half * 2.0 - full).abs() < 1e-6);
        assert!((full - m.page_disk_bandwidth).abs() < 1e-6);
    }
}
