//! Campaign results and the aggregations the paper's figures use.

use serde::{Deserialize, Serialize};
use sp2_hpm::CounterSelection;
use sp2_pbs::{utilization, JobRecord};
use sp2_power2::MachineConfig;
use sp2_rs2hpm::{JobCounterReport, RateReport, SystemSample};
use sp2_stats::{Coverage, TimeSeries};

/// Seconds per day.
const DAY_S: f64 = 86_400.0;

/// What the fault layer actually did to a campaign. All zeros (and
/// `enabled == false`) for a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Whether any fault injection was configured.
    pub enabled: bool,
    /// Node outage windows that started inside the horizon.
    pub outages: usize,
    /// Total node downtime inside the horizon, seconds.
    pub node_downtime_s: f64,
    /// Daemon sweeps that never ran.
    pub missed_sweeps: usize,
    /// Daemon restarts (each loses every baseline snapshot).
    pub daemon_restarts: usize,
    /// Glitched (32-bit truncated) node reads actually delivered.
    pub glitches: usize,
    /// Jobs killed by node failures.
    pub jobs_killed: usize,
    /// Killed jobs PBS requeued for another attempt.
    pub jobs_requeued: usize,
}

/// Everything a campaign produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Campaign length in days.
    pub days: u32,
    /// Machine size.
    pub node_count: usize,
    /// Per-node machine parameters the campaign ran with. Carried along
    /// so downstream analyses (Table 4's probes, the calibration suite,
    /// peak-rate normalization) need no side channel for the hardware
    /// description.
    pub machine: MachineConfig,
    /// The counter selection the monitors ran.
    pub selection: CounterSelection,
    /// The daemon's 15-minute machine-wide samples.
    pub samples: Vec<SystemSample>,
    /// Per-job epilogue reports (jobs that completed inside the window).
    pub job_reports: Vec<JobCounterReport>,
    /// PBS accounting records (including horizon-truncated jobs).
    pub pbs_records: Vec<JobRecord>,
    /// What the fault layer did during the run.
    pub faults: FaultSummary,
}

impl CampaignResult {
    /// A zero-day result carrying only the machine description. Campaign-
    /// independent experiments (Table 1, the calibration suite) run
    /// against this so every experiment shares one entry-point signature.
    pub fn empty(machine: MachineConfig, selection: CounterSelection) -> Self {
        CampaignResult {
            days: 0,
            node_count: 0,
            machine,
            selection,
            samples: Vec::new(),
            job_reports: Vec::new(),
            pbs_records: Vec::new(),
            faults: FaultSummary::default(),
        }
    }

    /// Sample-coverage ledger over the whole campaign, in node-samples.
    /// The `t = 0` baseline pass is excluded (it never contributes deltas
    /// even on a perfect machine), so a fault-free campaign's fraction is
    /// exactly `1.0`.
    pub fn coverage(&self) -> Coverage {
        let mut c = Coverage::new();
        for s in self.samples.iter().filter(|s| s.t > 0.0) {
            c.push(s.nodes_sampled as f64, s.nodes_total as f64);
        }
        c
    }

    /// Sample-coverage ledger for day `d` (samples in `(d, d+1]` days).
    pub fn day_coverage(&self, d: usize) -> Coverage {
        let lo = d as f64 * DAY_S;
        let hi = lo + DAY_S;
        let mut c = Coverage::new();
        for s in &self.samples {
            if s.t > lo && s.t <= hi {
                c.push(s.nodes_sampled as f64, s.nodes_total as f64);
            }
        }
        c
    }

    /// Samples the daemon should have collected over the horizon (one
    /// baseline pass plus 96 sweeps per day).
    pub fn expected_samples(&self) -> usize {
        self.days as usize * 96 + 1
    }

    /// Total per-node deltas the daemon discarded as counter glitches.
    pub fn total_anomalies(&self) -> usize {
        self.samples.iter().map(|s| s.anomalies).sum()
    }

    /// Days whose sample coverage is incomplete (gaps from outages,
    /// restarts, or anomalies).
    pub fn partial_days(&self) -> Vec<usize> {
        (0..self.days as usize)
            .filter(|&d| !self.day_coverage(d).is_complete())
            .collect()
    }

    /// Machine Gflops as a time series over the daemon samples.
    pub fn gflops_series(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for s in &self.samples {
            ts.push(s.t, s.rates.mflops / 1000.0);
        }
        ts
    }

    /// Daily mean machine Gflops (Figure 1's daily-rate dots).
    pub fn daily_gflops(&self) -> Vec<f64> {
        self.gflops_series().daily_means(self.days as usize)
    }

    /// Daily machine utilization (Figure 1's utilization trace).
    pub fn daily_utilization(&self) -> Vec<f64> {
        (0..self.days)
            .map(|d| {
                utilization(
                    &self.pbs_records,
                    self.node_count as u32,
                    d as f64 * DAY_S,
                    (d + 1) as f64 * DAY_S,
                )
            })
            .collect()
    }

    /// Campaign-average utilization (the paper's 64 %).
    pub fn mean_utilization(&self) -> f64 {
        let u = self.daily_utilization();
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }

    /// Campaign-average daily Gflops (the paper's ≈1.3).
    pub fn mean_daily_gflops(&self) -> f64 {
        let g = self.daily_gflops();
        if g.is_empty() {
            0.0
        } else {
            g.iter().sum::<f64>() / g.len() as f64
        }
    }

    /// Best single day's Gflops (the paper's 3.4).
    pub fn max_daily_gflops(&self) -> f64 {
        self.daily_gflops().into_iter().fold(0.0, f64::max)
    }

    /// Best 15-minute interval, Gflops (the paper's 5.7).
    pub fn max_sample_gflops(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.rates.mflops / 1000.0)
            .fold(0.0, f64::max)
    }

    /// Per-day, per-node rate reports: all of a day's sample deltas
    /// summed, divided by node-seconds — exactly how Tables 2–3 express
    /// "single node values" ("system rates may be obtained by multiplying
    /// by 144").
    ///
    /// The divisor is **coverage-weighted**: a day where only part of the
    /// machine was sampled divides by the node-seconds actually observed,
    /// so per-node rates stay comparable across gap-free and degraded
    /// days. At full coverage the weight is exactly `1.0` and the result
    /// is bit-identical to the unweighted computation; a fully dark day
    /// reports zero rates over the nominal window.
    pub fn daily_node_rates(&self) -> Vec<RateReport> {
        let selection = &self.selection;
        let n_slots = selection.len();
        let mut out = Vec::with_capacity(self.days as usize);
        for d in 0..self.days as usize {
            let lo = d as f64 * DAY_S;
            let hi = lo + DAY_S;
            let mut total = sp2_hpm::CounterDelta::zero(n_slots);
            let mut cov = Coverage::new();
            for s in &self.samples {
                // A sample at time t covers (t - interval, t]; attribute
                // it to the day containing t.
                if s.t > lo && s.t <= hi {
                    total.accumulate(&s.total);
                    cov.push(s.nodes_sampled as f64, s.nodes_total as f64);
                }
            }
            let frac = cov.fraction();
            let node_seconds = if frac > 0.0 {
                DAY_S * self.node_count as f64 * frac
            } else {
                // A fully dark day: the delta is zero too, so dividing by
                // the nominal window just yields all-zero rates.
                DAY_S * self.node_count.max(1) as f64
            };
            out.push(RateReport::from_delta(selection, &total, node_seconds));
        }
        out
    }

    /// Indices of days whose machine rate exceeds `gflops` (the paper's
    /// "30 of 270 days whose performance exceeded 2.0 Gflops").
    pub fn days_above(&self, gflops: f64) -> Vec<usize> {
        self.daily_gflops()
            .iter()
            .enumerate()
            .filter(|(_, &g)| g > gflops)
            .map(|(d, _)| d)
            .collect()
    }

    /// Job reports longer than `min_walltime_s` (the paper's 600 s batch
    /// filter).
    pub fn batch_reports(&self, min_walltime_s: f64) -> Vec<&JobCounterReport> {
        self.job_reports
            .iter()
            .filter(|r| r.walltime() > min_walltime_s)
            .collect()
    }

    /// Time-weighted average per-node Mflops over the batch reports
    /// (the paper's "19 Mflops per node").
    pub fn time_weighted_node_mflops(&self, min_walltime_s: f64) -> f64 {
        sp2_stats::summary::weighted_mean(
            self.batch_reports(min_walltime_s)
                .iter()
                .map(|r| (r.mflops_per_node(), r.walltime())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2_hpm::{nas_selection, CounterDelta};

    /// Builds a synthetic result without running a simulation.
    fn synthetic() -> CampaignResult {
        let selection = nas_selection();
        let n = selection.len();
        let mut samples = Vec::new();
        // 2 days x 96 samples; day 0 idle, day 1 busy.
        for k in 0..(2 * 96) {
            let t = (k + 1) as f64 * 900.0;
            let mut total = CounterDelta::zero(n);
            let busy = t > DAY_S;
            if busy {
                // 2.25e12 flops per 900 s machine-wide = 2.5 Gflops.
                let add_slot = selection.slot_of(sp2_hpm::Signal::Fpu0Add).unwrap();
                total.user[add_slot] = 2_250_000_000_000;
            }
            let rates = RateReport::from_delta(&selection, &total, 900.0);
            samples.push(SystemSample {
                t,
                nodes_sampled: 144,
                nodes_total: 144,
                anomalies: 0,
                total,
                rates,
            });
        }
        CampaignResult {
            days: 2,
            node_count: 144,
            machine: MachineConfig::nas_sp2(),
            selection: selection.clone(),
            samples,
            job_reports: vec![],
            pbs_records: vec![JobRecord {
                id: 1,
                nodes: 72,
                start: DAY_S,
                end: 2.0 * DAY_S,
                outcome: sp2_pbs::JobOutcome::Completed,
            }],
            faults: FaultSummary::default(),
        }
    }

    #[test]
    fn daily_gflops_separates_days() {
        let r = synthetic();
        let g = r.daily_gflops();
        assert_eq!(g.len(), 2);
        assert!(g[0] < 1e-9);
        // Day 1's bin holds 95 busy samples plus the idle sample whose
        // interval straddles midnight: 2.5 x 95/96.
        assert!((g[1] - 2.474).abs() < 0.01, "{}", g[1]);
    }

    #[test]
    fn utilization_from_records() {
        let r = synthetic();
        let u = r.daily_utilization();
        assert!(u[0] < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-9, "72 of 144 nodes all day");
        assert!((r.mean_utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn peak_queries() {
        let r = synthetic();
        assert!((r.max_sample_gflops() - 2.5).abs() < 0.01);
        assert!((r.max_daily_gflops() - 2.474).abs() < 0.01);
        assert!((r.mean_daily_gflops() - 1.237).abs() < 0.01);
    }

    #[test]
    fn days_above_threshold() {
        let r = synthetic();
        assert_eq!(r.days_above(2.0), vec![1]);
        assert_eq!(r.days_above(5.0), Vec::<usize>::new());
    }

    #[test]
    fn full_coverage_is_exact_and_complete() {
        let r = synthetic();
        let c = r.coverage();
        assert_eq!(c.fraction().to_bits(), 1.0f64.to_bits());
        assert!(c.is_complete());
        assert!(r.partial_days().is_empty());
        assert_eq!(r.total_anomalies(), 0);
    }

    #[test]
    fn gaps_shrink_coverage_and_flag_days() {
        let mut r = synthetic();
        // Knock 44 nodes out of every day-0 sample.
        for s in r.samples.iter_mut().filter(|s| s.t <= DAY_S) {
            s.nodes_sampled = 100;
        }
        let c = r.coverage();
        assert!(c.fraction() < 1.0);
        assert_eq!(r.partial_days(), vec![0]);
        assert!((r.day_coverage(0).fraction() - 100.0 / 144.0).abs() < 1e-12);
        assert_eq!(r.day_coverage(1).fraction().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn coverage_weighting_rescues_partial_day_rates() {
        let full = synthetic();
        let mut half = synthetic();
        // Day 1: only half the machine sampled, producing half the delta.
        for s in half.samples.iter_mut().filter(|s| s.t > DAY_S) {
            s.nodes_sampled = 72;
            for v in s.total.user.iter_mut() {
                *v /= 2;
            }
        }
        let f = full.daily_node_rates();
        let h = half.daily_node_rates();
        // Per-node rates survive the gap (the sampled half divides by the
        // sampled node-seconds).
        assert!((h[1].mflops - f[1].mflops).abs() < 1e-9);
        // And the fault-free day is bit-identical to the full run.
        assert_eq!(h[0].mflops.to_bits(), f[0].mflops.to_bits());
    }

    #[test]
    fn daily_node_rates_divide_by_node_seconds() {
        let r = synthetic();
        let rates = r.daily_node_rates();
        assert_eq!(rates.len(), 2);
        // Day 1: 96 x 2.25e12 flops / (86400 x 144) node-s ≈ 17.4 Mflops
        // — reassuringly, exactly Table 3's per-node scale for a
        // 2.5 Gflops day.
        assert!(
            (rates[1].mflops - 17.36).abs() < 0.05,
            "{}",
            rates[1].mflops
        );
        assert_eq!(rates[0].mflops, 0.0);
    }
}
