//! Discrete-event simulation of the 144-node NAS SP2.
//!
//! Ties every substrate together: jobs arrive from the workload trace,
//! PBS allocates dedicated nodes, each node's HPM counters advance at the
//! rates its job's *measured* kernel signature prescribes, halo exchanges
//! cross the High Performance Switch and land in DMA counters, memory
//! oversubscription invokes the measured page-fault-handler signature in
//! system mode, the RS2HPM daemon samples all nodes every 15 minutes, and
//! PBS prologue/epilogue hooks snapshot per-job counters.
//!
//! The output ([`result::CampaignResult`]) contains exactly the datasets
//! the paper's evaluation is built from:
//!
//! - the daemon's 15-minute [`sp2_rs2hpm::SystemSample`] trace → Figure 1,
//!   Tables 2–3 (daily filtering), the 5.7 Gflops peak-interval stat;
//! - per-job [`sp2_rs2hpm::JobCounterReport`]s → Figures 3, 4, 5;
//! - PBS accounting records → Figure 2 and the utilization series.

#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod activity;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod paging;
pub mod result;
pub mod rotate;
pub mod sim;
pub mod state;

pub use activity::ActivityPlan;
pub use engine::{EngineConfig, EngineKind, NodeBank};
pub use faults::{FaultPlan, Outage};
pub use paging::PagingModel;
pub use result::{CampaignResult, FaultSummary};
pub use rotate::{plan_signals, plan_signals_with_passes, run_campaign_rotated, RotatedCampaign};
pub use sim::{
    run_campaign, run_campaign_cfg, run_campaign_cfg_cancellable, run_campaign_cfg_spill,
    run_campaign_with_threads, run_replications, CampaignError, CancelToken, ClusterConfig,
    ClusterConfigBuilder, ClusterConfigError,
};
pub use sp2_rs2hpm::{SampleSink, SystemSample};
pub use state::NodeState;
