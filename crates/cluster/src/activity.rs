//! Per-node activity plans: what rates a node's counters advance at.
//!
//! When PBS places a job on a node, the cluster computes an
//! [`ActivityPlan`] from the job's *measured* kernel signature, its
//! communication spec (timed on the High Performance Switch model), and
//! the paging time-split. Counter advancement is then a pure function of
//! elapsed wall time, which lets the simulation jump between events
//! without per-cycle work.

use crate::paging::{PagingModel, TimeSplit};
use serde::{Deserialize, Serialize};
use sp2_hpm::{EventSet, Signal};
use sp2_power2::KernelSignature;
use sp2_switch::{DmaEngine, SwitchConfig};
use sp2_workload::JobProgram;

/// Counter-advancement rates for one node running one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityPlan {
    /// The job's compute signature (events per its own cycles).
    user_signature: KernelSignature,
    /// The system-mode handler signature (paging / VMM work).
    system_signature: KernelSignature,
    /// Wall-time split.
    pub split: TimeSplit,
    /// Fraction of wall time lost to message passing.
    pub comm_frac: f64,
    /// DMA read transfers per wall second (sends + disk writes).
    pub dma_read_per_s: f64,
    /// DMA write transfers per wall second (receives + disk reads).
    pub dma_write_per_s: f64,
}

impl ActivityPlan {
    /// Builds the plan for `program` running on a job of `job_nodes`
    /// nodes.
    pub fn for_job(
        program: &JobProgram,
        user_signature: &KernelSignature,
        system_signature: &KernelSignature,
        switch: &SwitchConfig,
        paging: &PagingModel,
        node_memory: u64,
        job_nodes: u32,
    ) -> Self {
        // --- communication share -----------------------------------
        let comm_frac = if program.comm.is_communicating() && job_nodes > 1 {
            let bytes = program.comm.exchange_bytes;
            let neighbors = program.comm.neighbors.min(job_nodes - 1);
            let serialization = neighbors as f64 * bytes as f64 / switch.bandwidth_bytes_per_s;
            let exchange = if program.comm.synchronous {
                // Blocking send/recv: the node idles the whole exchange.
                switch.latency_s + serialization
            } else {
                // Asynchronous overlap hides most of the serialization.
                switch.latency_s * 2.0 + 0.15 * serialization
            };
            exchange / (program.comm.step_seconds + exchange)
        } else {
            0.0
        };

        // --- paging time split --------------------------------------
        let oversub = program.oversubscription(node_memory);
        let mut split = paging.split(oversub, comm_frac);
        // Interactive sessions compute only during their duty cycle; the
        // rest of the residency the dedicated nodes idle.
        split.user *= program.duty_cycle.clamp(0.02, 1.0);

        // --- DMA traffic --------------------------------------------
        let dma = DmaEngine::default();
        let msg_bytes_per_s = if program.comm.is_communicating() && job_nodes > 1 {
            let neighbors = program.comm.neighbors.min(job_nodes - 1) as f64;
            neighbors * program.comm.exchange_bytes as f64 / program.comm.step_seconds
        } else {
            0.0
        };
        let paging_bytes_per_s = paging.paging_disk_rate(split.io_wait);
        let disk_bytes_per_s = program.disk_bytes_per_s + paging_bytes_per_s;
        // Message send + disk write → dma_read; receive + disk read →
        // dma_write. Halo exchange is symmetric; disk traffic is mostly
        // writes (solution dumps) with paging split both ways.
        let bpt = dma.bytes_per_transfer() as f64;
        let dma_read_per_s = (msg_bytes_per_s + 0.7 * disk_bytes_per_s) / bpt;
        let dma_write_per_s = (msg_bytes_per_s + 0.3 * disk_bytes_per_s) / bpt;

        ActivityPlan {
            user_signature: user_signature.clone(),
            system_signature: system_signature.clone(),
            split,
            comm_frac,
            dma_read_per_s,
            dma_write_per_s,
        }
    }

    /// An idle node: only background system activity (clock ticks, the
    /// RS2HPM daemon itself).
    pub fn idle(system_signature: &KernelSignature, paging: &PagingModel) -> Self {
        ActivityPlan {
            user_signature: system_signature.clone(), // unused at user=0
            system_signature: system_signature.clone(),
            split: TimeSplit {
                user: 0.0,
                system: paging.base_sys * 0.2,
                io_wait: 0.0,
            },
            comm_frac: 0.0,
            dma_read_per_s: 0.0,
            dma_write_per_s: 0.0,
        }
    }

    /// User-mode events over `dt` wall seconds.
    pub fn user_events(&self, dt: f64) -> EventSet {
        if self.split.user <= 0.0 {
            return EventSet::new();
        }
        self.user_signature.events_for_seconds(dt * self.split.user)
    }

    /// System-mode events over `dt` wall seconds.
    pub fn system_events(&self, dt: f64) -> EventSet {
        if self.split.system <= 0.0 {
            return EventSet::new();
        }
        self.system_signature
            .events_for_seconds(dt * self.split.system)
    }

    /// I/O-wait cycles over `dt` wall seconds (system mode: the kernel
    /// owns the processor while it idles on the paging device). Visible
    /// only to selections that watch [`Signal::IoWaitCycles`] — the §7
    /// extension.
    pub fn io_wait_events(&self, dt: f64) -> EventSet {
        let mut e = EventSet::new();
        if self.split.io_wait > 0.0 {
            let cycles = self.split.io_wait * dt * self.user_signature.clock_hz;
            e.bump(Signal::IoWaitCycles, cycles.round() as u64);
        }
        e
    }

    /// DMA events over `dt` wall seconds (absorbed in user mode, as the
    /// adapters DMA on behalf of the user's message buffers).
    pub fn dma_events(&self, dt: f64) -> EventSet {
        let mut e = EventSet::new();
        e.bump(Signal::DmaRead, (self.dma_read_per_s * dt).round() as u64);
        e.bump(Signal::DmaWrite, (self.dma_write_per_s * dt).round() as u64);
        e
    }

    /// The effective per-node user Mflops this plan delivers.
    pub fn effective_mflops(&self) -> f64 {
        self.user_signature.mflops() * self.split.user
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2_power2::handler::page_fault_signature;
    use sp2_power2::MachineConfig;
    use sp2_workload::{ProgramFamily, WorkloadLibrary};

    fn setup() -> (MachineConfig, WorkloadLibrary, KernelSignature) {
        let cfg = MachineConfig::nas_sp2();
        let lib = WorkloadLibrary::build(&cfg, 11);
        let handler = page_fault_signature(&cfg);
        (cfg, lib, handler)
    }

    #[test]
    fn fitting_cfd_job_keeps_most_user_time() {
        let (cfg, lib, handler) = setup();
        let id = lib.fitting_ids(cfg.memory_bytes, true)[0];
        let p = lib.program(id);
        let plan = ActivityPlan::for_job(
            p,
            lib.signature_of(id),
            &handler,
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            16,
        );
        assert!(plan.split.user > 0.8, "split {:?}", plan.split);
        assert!(plan.effective_mflops() > 5.0);
    }

    #[test]
    fn oversubscribed_job_collapses() {
        let (cfg, lib, handler) = setup();
        // The claim under test is about memory pressure, so pick the
        // *most* oversubscribed program: the first non-fitting id can be
        // a marginal case (a few percent over node memory) whose paging
        // tax is real but small, which is the paging model working as
        // intended, not a counterexample to collapse under pressure.
        let id = lib
            .fitting_ids(cfg.memory_bytes, false)
            .into_iter()
            .max_by(|a, b| {
                let over = |id| lib.program(id).oversubscription(cfg.memory_bytes);
                over(*a).total_cmp(&over(*b))
            })
            .expect("the library contains oversubscribed programs");
        let p = lib.program(id);
        let plan = ActivityPlan::for_job(
            p,
            lib.signature_of(id),
            &handler,
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            128,
        );
        assert!(plan.split.system > 0.1, "split {:?}", plan.split);
        let healthy_id = lib.fitting_ids(cfg.memory_bytes, true)[0];
        let healthy = ActivityPlan::for_job(
            lib.program(healthy_id),
            lib.signature_of(healthy_id),
            &handler,
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            16,
        );
        assert!(plan.effective_mflops() < 0.6 * healthy.effective_mflops());
    }

    #[test]
    fn single_node_job_has_no_comm() {
        let (cfg, lib, handler) = setup();
        let id = lib.family_ids(ProgramFamily::CfdSolver)[0];
        let plan = ActivityPlan::for_job(
            lib.program(id),
            lib.signature_of(id),
            &handler,
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            1,
        );
        assert_eq!(plan.comm_frac, 0.0);
    }

    #[test]
    fn synchronous_comm_costs_more_than_async() {
        let (cfg, lib, handler) = setup();
        let id = lib.family_ids(ProgramFamily::CfdSolver)[0];
        let mut sync_prog = lib.program(id).clone();
        sync_prog.comm.synchronous = true;
        sync_prog.comm.exchange_bytes = 1_000_000;
        sync_prog.comm.step_seconds = 2.0;
        let mut async_prog = sync_prog.clone();
        async_prog.comm.synchronous = false;
        let mk = |p: &JobProgram| {
            ActivityPlan::for_job(
                p,
                lib.signature_of(id),
                &handler,
                &SwitchConfig::default(),
                &PagingModel::default(),
                cfg.memory_bytes,
                32,
            )
        };
        assert!(mk(&sync_prog).comm_frac > 2.0 * mk(&async_prog).comm_frac);
    }

    #[test]
    fn event_scaling_linear_in_time() {
        let (cfg, lib, handler) = setup();
        let id = lib.family_ids(ProgramFamily::CfdSolver)[0];
        let plan = ActivityPlan::for_job(
            lib.program(id),
            lib.signature_of(id),
            &handler,
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            16,
        );
        let e1 = plan.user_events(900.0);
        let e2 = plan.user_events(1800.0);
        let f1 = e1.get(Signal::Fpu0Fma) as f64;
        let f2 = e2.get(Signal::Fpu0Fma) as f64;
        assert!((f2 / f1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn idle_plan_produces_no_user_events() {
        let (_, _, handler) = setup();
        let plan = ActivityPlan::idle(&handler, &PagingModel::default());
        assert!(plan.user_events(900.0).is_zero());
        let sys = plan.system_events(900.0);
        assert!(!sys.is_zero(), "background OS activity exists");
        assert_eq!(sys.flops_total(), 0);
        assert!(plan.dma_events(900.0).is_zero());
    }

    #[test]
    fn dma_rates_in_papers_ballpark() {
        let (cfg, lib, handler) = setup();
        // A communicating 16-node CFD job.
        let id = lib.family_ids(ProgramFamily::CfdSolver)[0];
        let plan = ActivityPlan::for_job(
            lib.program(id),
            lib.signature_of(id),
            &handler,
            &SwitchConfig::default(),
            &PagingModel::default(),
            cfg.memory_bytes,
            16,
        );
        // Paper: ~0.024e6 read + 0.017e6 write transfers/s per node on
        // active days. Same order of magnitude here.
        assert!(
            (1_000.0..200_000.0).contains(&plan.dma_read_per_s),
            "dma_read {}",
            plan.dma_read_per_s
        );
    }
}
