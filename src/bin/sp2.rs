//! `sp2` — command-line front end for the SP2 HPM reproduction.
//!
//! Every table and figure is dispatched through the experiment registry
//! ([`sp2_repro::core::experiments::all_experiments`]); the experiment id
//! doubles as the subcommand.
//!
//! ```text
//! sp2 table1                       # print Table 1
//! sp2 table2 --days 60             # Table 2 from a 60-day campaign
//! sp2 fig5 --json                  # Figure 5 dataset as JSON on stdout
//! sp2 calibration                  # §5 single-node anchors
//! sp2 iowait --days 30             # the §7 io-aware extension
//! sp2 toplev                       # top-down bottleneck tree
//! sp2 toplev --plan-only --json    # the 28-signal counter-group schedule
//! sp2 toplev --passes 2 --days 30  # rotate all 28 signals over 2 passes
//! sp2 availability --faults 0.05   # fault impact vs a fault-free twin
//! sp2 probe matmul                 # run one kernel under the HPM
//! sp2 campaign --days 270 -j 0     # everything, in parallel, with artifacts
//! sp2 profile --days 30            # self-measurement report of the run
//! sp2 table2 --metrics m.json      # any command + metrics dump afterwards
//! sp2 timeline --days 60           # the simulator's own Figure 1
//! sp2 timeline --trace-out t.json  # + Perfetto-loadable trace of the run
//! ```
//!
//! Exit codes are per error class so scripts can tell a typo from a
//! failed engine run: 2 usage, 3 unknown experiment, 4 cluster
//! configuration, 5 campaign spec or submission, 6 campaign engine,
//! 7 artifact i/o, 8 service protocol.

use sp2_repro::cluster::{EngineConfig, EngineKind};
use sp2_repro::core::compare::compare_datasets;
use sp2_repro::core::experiments::{all_experiments, experiment_or_err, SelectionKind};
use sp2_repro::core::serve::{self, Client, ServeConfig, Server};
use sp2_repro::core::{
    archive, export, metrics, timeline, toplev, CampaignResult, Json, Sp2Error, Sp2System,
    Submission, Tolerance,
};
use sp2_repro::hpm::{nas_selection, Hpm, Mode, SchedulePlan, Signal};
use sp2_repro::power2::{MachineConfig, Node};
use sp2_repro::rs2hpm::{BottleneckSplit, CounterSession};
use sp2_repro::workload::{
    blocked_matmul_kernel, cfd_kernel, naive_matmul_kernel, seqaccess_kernel, CfdKernelParams,
};
use std::process::ExitCode;

const USAGE: &str = "\
sp2 — reproduce Bergeron (SC 1998) on the simulated NAS SP2

USAGE:
    sp2 [OPTIONS] <COMMAND> [ARGS] [OPTIONS]

Global options may come before or after the command; they compose the
same either way.

COMMANDS:
    table1 | table2 | table3 | table4    regenerate a table
    fig1 | fig2 | fig3 | fig4 | fig5     regenerate a figure's dataset
    calibration                          §5 single-node anchors
    iowait                               §7 io-aware counter extension
    toplev                               top-down bottleneck accounting; with
                                         --passes N, run a rotated campaign
                                         that multiplexes the full 28-signal
                                         space across daemon sweeps
    availability                         fault impact vs a fault-free twin
    summary                              headline statistics vs the paper
    probe <matmul|naive|cfd|bt|seq>      run one kernel under the HPM
    campaign                             all of the above + JSON artifacts
    profile                              campaign under the trace layer, then
                                         print the self-measurement report
    timeline                             campaign under the flight recorder,
                                         then print per-phase sparkline
                                         histories (the simulator's Figure 1)
    list                                 list registered experiments
    serve                                run the campaign service: accept
                                         submissions over TCP, multiplex
                                         campaigns, stream NDJSON results,
                                         persist them in the result store
    submit [EXPERIMENT]                  send a submission to a running
                                         `sp2 serve` and stream its results
                                         (or run it in-process with --local)
    jobs [list|status|fetch|cancel] [JOB]
                                         query or control a running daemon;
                                         JOB is a unique digest prefix
    archive <EXPERIMENT> --out FILE      run a campaign and write its samples,
                                         job reports, accounting records, and
                                         dataset lines as a compact columnar
                                         sp2-archive/v1 container
    compare A B                          diff two result sets dataset by
                                         dataset (archives or NDJSON streams,
                                         freely mixed); exit code reports the
                                         verdict (see below)

OPTIONS:
    --days N        campaign length in days (default 60; the paper used 270)
    --threads N     campaign worker threads (default 1). `-j 0` means one
                    worker per core; values above the machine's available
                    parallelism are rejected
    --faults RATE   fault-injection rate (default 0 = fault-free; 1.0 is
                    roughly a troubled production month)
    --fault-seed N  seed for the fault plan (default 4096)
    --engine KIND   node engine: `batch` (default; struct-of-arrays bank
                    with interned plans and cluster-interval
                    fast-forward) or `reference` (the per-node loop the
                    batch engine is proven against). Results are
                    bit-identical either way
    --no-fast-forward
                    disable the steady-state fast-forward in the node
                    simulator (kernel measurement and cluster-interval
                    sweep elision) and step everything
                    (A/B escape hatch; results are bit-identical either
                    way, this only trades speed for paranoia)
    --json          print the dataset (or profile metrics) as JSON
    --metrics [PATH] enable the trace layer for any command; after it
                    finishes, write the metrics JSON to PATH, or print the
                    metrics table to stderr when PATH is omitted. Before
                    the command token the PATH form must be attached
                    (`--metrics=PATH`) so the command is never mistaken
                    for a path
    --trace-out PATH enable the flight recorder (any command; implied by
                    `timeline`) and write the run's span events to PATH as
                    Chrome trace-event JSON (open in Perfetto or
                    chrome://tracing)
    --cadence N     flight-recorder sampling cadence in daemon sweeps
                    (default 1 = every simulated 15-minute sweep)
    --plan-only     toplev: print the counter-group schedule and exit
                    without running a campaign
    --passes N      toplev: rotate the full 28-signal request over N
                    lockstep passes (default: the single-pass plan over
                    the campaign's own selection; the 28-signal space
                    needs at least 2)
    --live          jobs status: ask the daemon for a live snapshot too
                    (queue depth, sweep progress, metrics when enabled)

SERVICE OPTIONS (serve / submit / jobs):
    --addr HOST:PORT  daemon address (default 127.0.0.1:7598; serve
                    accepts port 0 for an ephemeral port)
    --store DIR     result-store directory (serve; default target/sp2-store)
    --campaigns N   concurrent campaign workers (serve; default 2)
    --experiments A,B,C
                    experiment ids for a submission (submit; a positional
                    experiment id works for a single one)
    --seed N        campaign seed for the submission (submit)
    --no-wait       return the job header immediately instead of
                    streaming results (submit)
    --local         run the submission in-process, no daemon, printing
                    the same dataset event lines the service would
                    stream (submit)

ARCHIVE / COMPARE OPTIONS:
    --out FILE      where `archive` writes the container
    --archive FILE  run an experiment against an archived campaign
                    instead of simulating (`sp2 table2 --archive a.sp2a`)
    --rel-tol X     compare: relative tolerance per metric (default 1e-9)
    --abs-tol X     compare: absolute tolerance per metric (default 0)

EXIT CODES:
    0 ok   2 usage   3 unknown experiment   4 cluster config
    5 campaign spec / submission   6 campaign engine   7 artifact i/o
    8 service protocol
    compare: 0 bit-identical   3 within tolerance   4 tolerance exceeded
    5 shape mismatch
";

/// Everything the front end can fail with: a usage problem (ours) or a
/// facade error (classed by [`Sp2Error`]).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Sp2(Sp2Error),
}

impl From<Sp2Error> for CliError {
    fn from(e: Sp2Error) -> Self {
        CliError::Sp2(e)
    }
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Usage(_) => 2,
            CliError::Sp2(Sp2Error::UnknownExperiment(_)) => 3,
            CliError::Sp2(Sp2Error::Config(_)) => 4,
            CliError::Sp2(Sp2Error::Spec(_) | Sp2Error::Submission(_)) => 5,
            CliError::Sp2(Sp2Error::Campaign(_)) => 6,
            CliError::Sp2(Sp2Error::Io(_)) => 7,
            CliError::Sp2(Sp2Error::Protocol(_)) => 8,
        })
    }

    fn message(&self) -> String {
        match self {
            CliError::Usage(m) => m.clone(),
            CliError::Sp2(e) => e.to_string(),
        }
    }
}

struct Args {
    command: String,
    arg: Option<String>,
    arg2: Option<String>,
    days: u32,
    threads: usize,
    faults: f64,
    fault_seed: u64,
    json: bool,
    engine: EngineKind,
    fast_forward: bool,
    /// `None` = tracing off; `Some(None)` = `--metrics` (table to stderr);
    /// `Some(Some(path))` = `--metrics PATH` (JSON to the file).
    metrics: Option<Option<String>>,
    /// Chrome trace-event destination; enables the flight recorder.
    trace_out: Option<String>,
    /// Flight-recorder sampling cadence in daemon sweeps.
    cadence: u64,
    /// Daemon address for `serve` / `submit` / `jobs`.
    addr: String,
    /// Result-store directory for `serve`.
    store: String,
    /// Concurrent campaign workers for `serve`.
    campaigns: usize,
    /// Comma-separated experiment ids for `submit`.
    experiments: Option<String>,
    /// Campaign seed for `submit` (None = the spec default).
    seed: Option<u64>,
    /// `submit --no-wait`: return the job header, don't stream.
    no_wait: bool,
    /// `submit --local`: run in-process instead of through a daemon.
    local: bool,
    /// `archive --out`: destination container path.
    out: Option<String>,
    /// `--archive`: replay experiments against this archived campaign.
    archive: Option<String>,
    /// `compare --rel-tol` (None = the codec default, 1e-9).
    rel_tol: Option<f64>,
    /// `compare --abs-tol` (None = 0).
    abs_tol: Option<f64>,
    /// `toplev --plan-only`: print the schedule, run nothing.
    plan_only: bool,
    /// `toplev --passes N`: rotate the full signal space over N passes.
    passes: Option<usize>,
    /// `jobs status --live`: ask for the daemon's live snapshot.
    live: bool,
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn parse_args() -> Result<Args, String> {
    parse_args_from(std::env::args().skip(1))
}

/// Parses an argument list (everything after the program name). Split
/// from [`parse_args`] so the unit tests can feed token vectors without
/// spawning a process.
///
/// The command is the **first non-option token** — global options
/// compose identically before and after it (`sp2 --engine reference
/// submit …` ≡ `sp2 submit --engine reference …`). Up to two further
/// positional tokens ride along (`probe matmul`, `jobs status 3f2a`).
fn parse_args_from(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut argv = argv.into_iter().peekable();
    let mut args = Args {
        command: String::new(),
        arg: None,
        arg2: None,
        days: 60,
        threads: 1,
        faults: 0.0,
        fault_seed: 4_096,
        json: false,
        engine: EngineKind::default(),
        fast_forward: true,
        metrics: None,
        trace_out: None,
        cadence: 1,
        addr: "127.0.0.1:7598".into(),
        store: "target/sp2-store".into(),
        campaigns: 2,
        experiments: None,
        seed: None,
        no_wait: false,
        local: false,
        out: None,
        archive: None,
        rel_tol: None,
        abs_tol: None,
        plan_only: false,
        passes: None,
        live: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--days" => {
                let v = argv.next().ok_or("--days needs a value")?;
                args.days = v.parse().map_err(|_| format!("bad --days value: {v}"))?;
                if args.days == 0 {
                    return Err("--days must be at least 1".into());
                }
            }
            "--threads" | "-j" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad --threads value: {v}"))?;
                let avail = available_parallelism();
                if args.threads > avail {
                    return Err(format!(
                        "--threads {} exceeds the available parallelism ({avail}); \
                         use `-j 0` for one worker per core",
                        args.threads
                    ));
                }
            }
            "--faults" => {
                let v = argv.next().ok_or("--faults needs a value")?;
                args.faults = v.parse().map_err(|_| format!("bad --faults value: {v}"))?;
                if !args.faults.is_finite() || args.faults < 0.0 {
                    return Err(format!("--faults must be a finite rate >= 0, got {v}"));
                }
            }
            "--fault-seed" => {
                let v = argv.next().ok_or("--fault-seed needs a value")?;
                args.fault_seed = v
                    .parse()
                    .map_err(|_| format!("bad --fault-seed value: {v}"))?;
            }
            "--json" => args.json = true,
            "--engine" => {
                let v = argv
                    .next()
                    .ok_or("--engine needs a value (batch|reference)")?;
                args.engine = match v.as_str() {
                    "batch" => EngineKind::Batch,
                    "reference" => EngineKind::Reference,
                    other => return Err(format!("bad --engine value: {other} (batch|reference)")),
                };
            }
            "--no-fast-forward" => args.fast_forward = false,
            "--metrics" => {
                // The optional PATH is whatever non-option token follows;
                // a following option (e.g. `--metrics --json`) must never
                // be swallowed as the path. Before the command token the
                // bare form never consumes anything either — `sp2
                // --metrics table2` must read table2 as the command, not
                // as a path (use `--metrics=PATH` there).
                args.metrics = Some(if args.command.is_empty() {
                    None
                } else {
                    argv.next_if(|v| !v.starts_with('-'))
                });
            }
            s if s.starts_with("--metrics=") => {
                let path = &s["--metrics=".len()..];
                if path.is_empty() {
                    return Err("--metrics= needs a PATH after the equals sign".into());
                }
                args.metrics = Some(Some(path.to_string()));
            }
            "--trace-out" => {
                let v = argv.next().ok_or("--trace-out needs a PATH")?;
                if v.starts_with('-') {
                    return Err(format!("--trace-out needs a PATH, got option {v}"));
                }
                args.trace_out = Some(v);
            }
            "--cadence" => {
                let v = argv.next().ok_or("--cadence needs a value")?;
                args.cadence = v.parse().map_err(|_| format!("bad --cadence value: {v}"))?;
                if args.cadence == 0 {
                    return Err("--cadence must be at least 1 sweep".into());
                }
            }
            "--addr" => {
                let v = argv.next().ok_or("--addr needs a HOST:PORT value")?;
                if v.starts_with('-') {
                    return Err(format!("--addr needs a HOST:PORT value, got option {v}"));
                }
                args.addr = v;
            }
            "--store" => {
                let v = argv.next().ok_or("--store needs a DIR value")?;
                if v.starts_with('-') {
                    return Err(format!("--store needs a DIR value, got option {v}"));
                }
                args.store = v;
            }
            "--campaigns" => {
                let v = argv.next().ok_or("--campaigns needs a value")?;
                args.campaigns = v
                    .parse()
                    .map_err(|_| format!("bad --campaigns value: {v}"))?;
                if args.campaigns == 0 {
                    return Err("--campaigns must be at least 1 worker".into());
                }
            }
            "--experiments" => {
                let v = argv.next().ok_or("--experiments needs a comma list")?;
                if v.starts_with('-') {
                    return Err(format!("--experiments needs a comma list, got option {v}"));
                }
                args.experiments = Some(v);
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad --seed value: {v}"))?);
            }
            "--no-wait" => args.no_wait = true,
            "--local" => args.local = true,
            "--plan-only" => args.plan_only = true,
            "--live" => args.live = true,
            "--passes" => {
                let v = argv.next().ok_or("--passes needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --passes value: {v}"))?;
                if n == 0 {
                    return Err("--passes must be at least 1".into());
                }
                args.passes = Some(n);
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a FILE value")?;
                if v.starts_with('-') {
                    return Err(format!("--out needs a FILE value, got option {v}"));
                }
                args.out = Some(v);
            }
            "--archive" => {
                let v = argv.next().ok_or("--archive needs a FILE value")?;
                if v.starts_with('-') {
                    return Err(format!("--archive needs a FILE value, got option {v}"));
                }
                args.archive = Some(v);
            }
            "--rel-tol" => {
                let v = argv.next().ok_or("--rel-tol needs a value")?;
                let tol: f64 = v.parse().map_err(|_| format!("bad --rel-tol value: {v}"))?;
                if !tol.is_finite() || tol < 0.0 {
                    return Err(format!("--rel-tol must be a finite value >= 0, got {v}"));
                }
                args.rel_tol = Some(tol);
            }
            "--abs-tol" => {
                let v = argv.next().ok_or("--abs-tol needs a value")?;
                let tol: f64 = v.parse().map_err(|_| format!("bad --abs-tol value: {v}"))?;
                if !tol.is_finite() || tol < 0.0 {
                    return Err(format!("--abs-tol must be a finite value >= 0, got {v}"));
                }
                args.abs_tol = Some(tol);
            }
            "--help" | "-h" => {
                if args.command.is_empty() {
                    args.command = "help".into();
                }
            }
            other if !other.starts_with('-') => {
                if args.command.is_empty() {
                    args.command = other.to_string();
                } else if args.arg.is_none() {
                    args.arg = Some(other.to_string());
                } else if args.arg2.is_none() {
                    args.arg2 = Some(other.to_string());
                } else {
                    return Err(format!("unexpected argument: {other}"));
                }
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if args.command.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn probe(kernel_name: &str) -> Result<(), String> {
    let machine = MachineConfig::nas_sp2();
    let kernel = match kernel_name {
        "matmul" => blocked_matmul_kernel(100_000),
        "naive" => naive_matmul_kernel(100_000),
        "cfd" => cfd_kernel("cfd-probe", &CfdKernelParams::default(), 60_000),
        "bt" => cfd_kernel("bt-probe", &CfdKernelParams::npb_bt(), 60_000),
        "seq" => seqaccess_kernel(300_000),
        other => {
            return Err(format!(
                "unknown kernel: {other} (try matmul|naive|cfd|bt|seq)"
            ))
        }
    };
    let mut node = Node::with_seed(machine, 7);
    let mut hpm = Hpm::new(nas_selection());
    let session = CounterSession::open(&hpm, 0.0);
    let stats = node.run_kernel(&kernel);
    hpm.absorb(&stats.events, Mode::User);
    let elapsed = machine.cycles_to_seconds(stats.cycles);
    let (_delta, report) = session.close(&hpm, elapsed);
    println!("kernel            {}", kernel.name);
    println!("cycles            {}", stats.cycles);
    println!("instructions      {}", stats.instructions);
    println!("ipc               {:.2}", stats.ipc());
    println!(
        "Mflops            {:.1}  (peak {:.0})",
        report.mflops,
        machine.peak_mflops()
    );
    println!("Mips              {:.1}", report.mips);
    println!("flops/memref      {:.2}", report.flops_per_memref());
    println!("FPU0/FPU1         {:.2}", report.fpu0_fpu1_ratio());
    println!(
        "fma flop share    {:.0} %",
        report.fma_flop_fraction() * 100.0
    );
    println!(
        "cache-miss ratio  {:.2} %",
        report.cache_miss_ratio() * 100.0
    );
    println!("TLB-miss ratio    {:.3} %", report.tlb_miss_ratio() * 100.0);
    Ok(())
}

/// Writes the metrics snapshot where `--metrics` asked for it: JSON to a
/// file, or the plain text table to stderr (keeping stdout clean for the
/// dataset the command printed).
fn dump_metrics(dest: Option<&str>) -> Result<(), CliError> {
    let snap = metrics::snapshot();
    match dest {
        Some(path) => {
            write_json_file(path, &metrics::to_json(&snap))
                .map_err(|e| CliError::Sp2(Sp2Error::Io(e)))?;
            eprintln!("metrics written to {path}");
        }
        None => eprint!("{}", snap.render_text()),
    }
    Ok(())
}

/// Streams a document to `path` (pretty, trailing newline) without
/// rendering it to a `String` first — year-scale timelines and metrics
/// dumps shouldn't double their size in resident text.
fn write_json_file(path: &str, doc: &Json) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    doc.write_to(&mut f)?;
    f.write_all(b"\n")?;
    f.flush()
}

/// Writes the drained span events where `--trace-out` asked for them, as
/// Chrome trace-event JSON.
fn dump_trace(path: &str) -> Result<(), CliError> {
    let events = sp2_repro::trace::events::drain();
    let dropped = sp2_repro::trace::events::dropped();
    write_json_file(path, &timeline::chrome_trace(&events, dropped))
        .map_err(|e| CliError::Sp2(Sp2Error::Io(e)))?;
    eprintln!(
        "trace written to {path} ({} events, {dropped} dropped)",
        events.len()
    );
    Ok(())
}

/// Pure translation from parsed flags to the engine configuration the
/// run executes under. No process state changes here — the switches take
/// effect when the config is applied.
fn engine_config(args: &Args) -> EngineConfig {
    let mut engine = EngineConfig::default()
        .engine(args.engine)
        .threads(args.threads);
    // The trace layer stays off (one relaxed atomic load per record site)
    // unless this invocation actually wants measurements.
    if args.metrics.is_some() || args.command == "profile" {
        engine = engine.metrics(true);
    }
    // Same for the flight recorder: only `timeline` and `--trace-out`
    // pay for span events and interval sampling.
    if args.trace_out.is_some() || args.command == "timeline" {
        engine = engine.recording_cadence(args.cadence);
    }
    if !args.fast_forward {
        engine = engine.fast_forward(false);
    }
    engine
}

fn run() -> Result<ExitCode, CliError> {
    let args = parse_args().map_err(CliError::Usage)?;
    let engine = engine_config(&args);
    // Applied up front so commands that never build an Sp2System (probe,
    // list) still honor --metrics / --trace-out / --no-fast-forward.
    timeline::apply_engine_config(&engine);
    let code = dispatch(&args, engine)?;
    if let Some(dest) = &args.metrics {
        dump_metrics(dest.as_deref())?;
    }
    if let Some(path) = &args.trace_out {
        dump_trace(path)?;
    }
    Ok(code)
}

/// Runs the command. `Ok` carries the process exit code — almost always
/// success, but `compare` reports its verdict through it.
fn dispatch(args: &Args, engine: EngineConfig) -> Result<ExitCode, CliError> {
    let cmd = args.command.as_str();
    let done = Ok(ExitCode::SUCCESS);

    match cmd {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return done;
        }
        "list" => {
            for e in all_experiments() {
                println!("{:<12} {}", e.id(), e.title());
            }
            return done;
        }
        "probe" => {
            let k = args
                .arg
                .as_deref()
                .ok_or_else(|| CliError::Usage("probe needs a kernel name".into()))?;
            probe(k).map_err(CliError::Usage)?;
            return done;
        }
        "serve" => {
            cmd_serve(args, engine)?;
            return done;
        }
        "submit" => {
            cmd_submit(args, engine)?;
            return done;
        }
        "jobs" => {
            cmd_jobs(args)?;
            return done;
        }
        "archive" => {
            cmd_archive(args, engine)?;
            return done;
        }
        "compare" => return cmd_compare(args),
        "toplev" if args.plan_only => {
            cmd_toplev_plan(args)?;
            return done;
        }
        _ => {}
    }

    // `--archive` replaces the simulation: the archived campaign seeds
    // the cache and its length overrides `--days` (the archive defines
    // the campaign).
    let preloaded = args
        .archive
        .as_deref()
        .map(load_campaign_archive)
        .transpose()?;
    let mut sys = Sp2System::builder()
        .days(preloaded.as_ref().map_or(args.days, |(_, c)| c.days))
        .engine(engine)
        .faults(args.faults)
        .fault_seed(args.fault_seed)
        .build();
    if let Some((kind, campaign)) = preloaded {
        if campaign.faults.enabled != (args.faults > 0.0) {
            return Err(CliError::Usage(if campaign.faults.enabled {
                "the archived campaign ran with faults; pass the matching --faults rate".into()
            } else {
                "the archived campaign is fault-free; drop --faults".into()
            }));
        }
        eprintln!(
            "replaying a {}-day archived campaign ({} samples, {} job reports)…",
            campaign.days,
            campaign.samples.len(),
            campaign.job_reports.len()
        );
        sys.preload_campaign(kind, campaign.faults.enabled, campaign);
    }

    if cmd == "toplev" && args.passes.is_some() {
        cmd_toplev_rotated(args, &mut sys)?;
        return done;
    }

    if cmd == "timeline" {
        eprintln!(
            "running a {}-day campaign under the flight recorder…",
            args.days
        );
        sys.campaign()?;
        let series = sp2_repro::trace::recorder::series();
        if args.json {
            println!("{}", timeline::timeline_json(&series).to_string_pretty());
        } else {
            print!("{}", timeline::render_timeline(&series));
        }
        return done;
    }

    if cmd == "campaign" || cmd == "profile" {
        eprintln!(
            "running a {}-day campaign on {} thread(s){}…",
            args.days,
            if args.threads == 0 {
                "all".to_string()
            } else {
                args.threads.to_string()
            },
            if args.faults > 0.0 {
                format!(" with faults at rate {}", args.faults)
            } else {
                String::new()
            }
        );
        for dataset in sys.run_all()? {
            if cmd == "campaign" {
                println!("{}", dataset.rendered);
            }
            dataset.write_artifact()?;
        }
        eprintln!("artifacts written to {}", export::artifacts_dir().display());
        if cmd == "profile" {
            let snap = metrics::snapshot();
            if args.json {
                println!("{}", metrics::to_json(&snap).to_string_pretty());
            } else {
                print!("{}", metrics::profile_report(&snap));
            }
        }
        return done;
    }

    let exp = experiment_or_err(cmd)
        .map_err(|_| CliError::Sp2(Sp2Error::UnknownExperiment(format!("{cmd}\n{USAGE}"))))?;
    if exp.needs_campaign() {
        eprintln!("running a {}-day campaign…", args.days);
    }
    let dataset = sys.dataset(exp)?;
    if args.json {
        println!("{}", dataset.json.to_string_pretty());
    } else {
        print!("{}", dataset.rendered);
    }
    done
}

/// The schedule `toplev` plans over: the full 28-signal space, minimal
/// by default, stretched when `--passes N` asks for rotation slack.
fn toplev_plan(args: &Args) -> Result<SchedulePlan, CliError> {
    match args.passes {
        Some(n) => SchedulePlan::with_passes(&Signal::ALL, n)
            .map_err(|e| CliError::Usage(format!("--passes {n}: {e}"))),
        None => Ok(SchedulePlan::minimal(&Signal::ALL)),
    }
}

/// `sp2 toplev --plan-only`: print the counter-group schedule for the
/// full 28-signal space without running a campaign.
fn cmd_toplev_plan(args: &Args) -> Result<(), CliError> {
    let plan = toplev_plan(args)?;
    if args.json {
        println!(
            "{}",
            Json::obj()
                .field("schema", toplev::SCHEMA)
                .field("plan", toplev::plan_json(&plan))
                .to_string_pretty()
        );
    } else {
        print!("{}", toplev::render_plan(&plan));
    }
    Ok(())
}

/// `sp2 toplev --passes N`: run N lockstep campaigns rotating the full
/// 28-signal schedule across daemon sweeps, reconstruct every signal
/// with coverage fractions and error bounds, and render the bottleneck
/// tree from the reconstructed totals.
fn cmd_toplev_rotated(args: &Args, sys: &mut Sp2System) -> Result<(), CliError> {
    let plan = toplev_plan(args)?;
    eprintln!(
        "running a {}-day campaign {} time(s) to rotate {} signal(s)…",
        args.days,
        plan.n_passes(),
        plan.requested().len()
    );
    let rotated = sys.rotated_campaign(&plan)?;
    let recon = rotated
        .reconstruct()
        .map_err(|e| Sp2Error::Protocol(format!("rotated reconstruction: {e}")))?;
    let split = BottleneckSplit::from_totals(|sig| recon.total(sig))
        .ok_or_else(|| Sp2Error::Protocol("rotated campaign measured no cycles".into()))?;
    let tree = toplev::bottleneck_tree(&split);
    if args.json {
        println!(
            "{}",
            Json::obj()
                .field("schema", toplev::SCHEMA)
                .field("tree", tree.to_json())
                .field("plan", toplev::plan_json(&plan))
                .field("max_error", recon.max_error())
                .field("reconstruction", toplev::reconstruction_json(&recon))
                .to_string_pretty()
        );
    } else {
        println!("Top-down bottleneck accounting (rotated, share of reconstructed cycles)");
        print!("{}", tree.render());
        println!();
        print!("{}", toplev::render_plan(&plan));
        println!();
        print!("{}", toplev::render_reconstruction(&recon));
        println!(
            "rotation: max multiplexing error {:.4}, min coverage {:.0} %",
            recon.max_error(),
            recon.min_coverage() * 100.0
        );
    }
    Ok(())
}

/// Loads `--archive` input: the campaign plus the cache key it should
/// seed ([`SelectionKind`] recovered from the stored selection).
fn load_campaign_archive(path: &str) -> Result<(SelectionKind, CampaignResult), CliError> {
    let loaded = archive::load_archive(std::path::Path::new(path))?;
    let campaign = loaded.campaign.ok_or_else(|| {
        CliError::Sp2(Sp2Error::Protocol(format!(
            "{path} holds dataset lines only, no campaign to replay"
        )))
    })?;
    let kind = if campaign.selection == SelectionKind::IoAware.selection() {
        SelectionKind::IoAware
    } else {
        SelectionKind::Nas
    };
    Ok((kind, campaign))
}

/// `sp2 archive <EXPERIMENT> --out FILE`: run the submission the same
/// way `submit --local` would, then persist the campaign and the
/// dataset lines as one sp2-archive/v1 container.
fn cmd_archive(args: &Args, engine: EngineConfig) -> Result<(), CliError> {
    let out = args
        .out
        .as_deref()
        .ok_or_else(|| CliError::Usage("archive needs --out FILE".into()))?;
    let submission = submission_from_args(args)?;
    eprintln!("running a {}-day campaign…", args.days);
    let (lines, campaign) = serve::run_local_archival(&submission, engine)?;
    let file = std::fs::File::create(out).map_err(|e| CliError::Sp2(Sp2Error::Io(e)))?;
    let mut w = archive::write_campaign_archive(std::io::BufWriter::new(file), &campaign, &lines)?;
    use std::io::Write as _;
    w.flush().map_err(|e| CliError::Sp2(Sp2Error::Io(e)))?;
    eprintln!(
        "archive written to {out} ({} samples, {} job reports, {} datasets)",
        campaign.samples.len(),
        campaign.job_reports.len(),
        lines.len()
    );
    Ok(())
}

/// Reads one `compare` input into labeled dataset documents: an
/// sp2-archive container's dataset lines, or an NDJSON stream (dataset
/// events picked out; side-channel events skipped; plain JSON-per-line
/// files compare whole lines).
fn load_compare_input(path: &str) -> Result<Vec<(String, Json)>, CliError> {
    let p = std::path::Path::new(path);
    let lines = if archive::file_is_archive(p) {
        archive::load_archive(p)?.dataset_lines
    } else {
        std::fs::read_to_string(p)
            .map_err(|e| CliError::Sp2(Sp2Error::Io(e)))?
            .lines()
            .map(str::to_string)
            .collect()
    };
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| {
            CliError::Sp2(Sp2Error::Protocol(format!("{path} line {}: {e}", i + 1)))
        })?;
        match doc.get("event").and_then(Json::as_str) {
            Some("dataset") | None => {}
            Some(_) => continue, // metrics/timeline side channel
        }
        let label = doc
            .get("experiment")
            .and_then(Json::as_str)
            .map_or_else(|| format!("line {}", i + 1), str::to_string);
        // Compare the dataset body, not the stream envelope: the `job`
        // digest covers the seed, so leaving it in would turn every
        // different-seed comparison into a string (shape) mismatch
        // instead of a measured numeric difference.
        let body = doc.get("doc").cloned().unwrap_or(doc);
        out.push((label, body));
    }
    Ok(out)
}

/// `sp2 compare A B`: dataset-by-dataset diff with per-metric
/// tolerances. The verdict is the exit code: 0 bit-identical, 3 within
/// tolerance, 4 exceeded, 5 shape mismatch.
fn cmd_compare(args: &Args) -> Result<ExitCode, CliError> {
    let (a, b) = match (&args.arg, &args.arg2) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(CliError::Usage(
                "compare needs two inputs: sp2 compare A B".into(),
            ))
        }
    };
    let tolerance = Tolerance {
        rel: args.rel_tol.unwrap_or(Tolerance::default().rel),
        abs: args.abs_tol.unwrap_or(0.0),
    };
    let left = load_compare_input(a)?;
    let right = load_compare_input(b)?;
    let report = compare_datasets(&left, &right, tolerance);
    if args.json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", report.render_table());
    }
    Ok(ExitCode::from(report.outcome.exit_code()))
}

/// `sp2 serve`: run the campaign service in the foreground until a
/// `shutdown` request (or a signal) takes it down.
fn cmd_serve(args: &Args, engine: EngineConfig) -> Result<(), CliError> {
    let server = Server::bind(ServeConfig {
        addr: args.addr.clone(),
        store_dir: args.store.clone().into(),
        campaigns: args.campaigns,
        engine,
    })?;
    eprintln!(
        "sp2 serve listening on {} ({} campaign worker(s), store {})",
        server.local_addr()?,
        args.campaigns,
        args.store,
    );
    server.run()?;
    eprintln!("sp2 serve stopped");
    Ok(())
}

/// Pure translation from CLI flags to a canonical [`Submission`] — the
/// one-shot path and the service path build the exact same value, so
/// they get the exact same digest.
fn submission_from_args(args: &Args) -> Result<Submission, CliError> {
    let ids: Vec<String> = match (&args.experiments, &args.arg) {
        (Some(list), _) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
        (None, Some(one)) => vec![one.clone()],
        (None, None) => {
            return Err(CliError::Usage(format!(
                "{} needs an experiment: `sp2 {} table2` or `--experiments a,b,c`",
                args.command, args.command
            )))
        }
    };
    let mut builder = Submission::builder()
        .days(args.days)
        .faults(args.faults)
        .fault_seed(args.fault_seed)
        .experiments(ids);
    if let Some(seed) = args.seed {
        builder = builder.seed(seed);
    }
    Ok(builder.build()?)
}

/// `sp2 submit`: build the submission, then either run it in-process
/// (`--local`) or hand it to a daemon and print the streamed event
/// lines verbatim. Dataset lines are byte-identical either way.
fn cmd_submit(args: &Args, engine: EngineConfig) -> Result<(), CliError> {
    let submission = submission_from_args(args)?;
    if args.local {
        for line in serve::run_local(&submission, engine)? {
            println!("{line}");
        }
        return Ok(());
    }
    let mut client = Client::connect(args.addr.as_str()).map_err(connect_err(&args.addr))?;
    if args.no_wait {
        let header = client.request(
            &Json::obj()
                .field("op", "submit")
                .field("submission", submission.to_json())
                .field("wait", false),
        )?;
        println!("{}", header.to_string_compact());
        return Ok(());
    }
    let outcome = client.submit_and_wait(&submission)?;
    eprintln!("{}", outcome.header.to_string_compact());
    for line in &outcome.dataset_lines {
        println!("{line}");
    }
    eprintln!("{}", outcome.terminal.to_string_compact());
    if outcome.is_done() {
        Ok(())
    } else {
        Err(CliError::Sp2(Sp2Error::Protocol(format!(
            "job {} finished {}",
            outcome
                .header
                .get("job")
                .and_then(Json::as_str)
                .unwrap_or("?"),
            outcome.state(),
        ))))
    }
}

/// `sp2 jobs [list|status|fetch|cancel] [JOB]`: query or control a
/// running daemon over the same protocol `submit` uses.
fn cmd_jobs(args: &Args) -> Result<(), CliError> {
    let action = args.arg.as_deref().unwrap_or("list");
    let job_of = |args: &Args| -> Result<String, CliError> {
        args.arg2.clone().ok_or_else(|| {
            CliError::Usage(format!(
                "jobs {action} needs a JOB (a unique digest prefix)"
            ))
        })
    };
    let mut client = Client::connect(args.addr.as_str()).map_err(connect_err(&args.addr))?;
    match action {
        "list" => {
            let resp = client.request(&Json::obj().field("op", "list"))?;
            let Some(Json::Arr(rows)) = resp.get("jobs") else {
                return Err(CliError::Sp2(Sp2Error::Protocol(
                    "list response carried no jobs array".into(),
                )));
            };
            println!(
                "{:<14} {:<10} {:>8}  EXPERIMENTS",
                "JOB", "STATE", "DATASETS"
            );
            for row in rows {
                let field = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
                let datasets = row
                    .get("datasets")
                    .and_then(Json::as_f64)
                    .map_or_else(|| "?".to_string(), |n| format!("{n:.0}"));
                let experiments = match row.get("experiments") {
                    Some(Json::Arr(ids)) => ids
                        .iter()
                        .filter_map(Json::as_str)
                        .collect::<Vec<_>>()
                        .join(","),
                    _ => String::new(),
                };
                println!(
                    "{:<14} {:<10} {:>8}  {}",
                    &field("job")[..field("job").len().min(12)],
                    field("state"),
                    datasets,
                    experiments,
                );
            }
            Ok(())
        }
        "status" => {
            let mut req = Json::obj()
                .field("op", "status")
                .field("job", job_of(args)?);
            if args.live {
                req = req.field("live", true);
            }
            let resp = client.request(&req)?;
            println!("{}", resp.to_string_compact());
            Ok(())
        }
        "cancel" => {
            let resp = client.request(
                &Json::obj()
                    .field("op", "cancel")
                    .field("job", job_of(args)?),
            )?;
            println!("{}", resp.to_string_compact());
            Ok(())
        }
        "fetch" => {
            client.send(&Json::obj().field("op", "fetch").field("job", job_of(args)?))?;
            let header = client.recv()?;
            eprintln!("{}", header.to_string_compact());
            loop {
                let Some(line) = client.recv_line()? else {
                    return Err(CliError::Sp2(Sp2Error::Protocol(
                        "stream ended before a terminal event".into(),
                    )));
                };
                let doc = Json::parse(&line)
                    .map_err(|e| Sp2Error::Protocol(format!("bad event line: {e}")))?;
                match doc.get("event").and_then(Json::as_str) {
                    Some("done") | Some("error") => {
                        eprintln!("{line}");
                        return Ok(());
                    }
                    Some("dataset") => println!("{line}"),
                    _ => {} // metrics/timeline side channel
                }
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown jobs action: {other} (list|status|fetch|cancel)"
        ))),
    }
}

/// Decorates a connect failure with the address it was aimed at — "is
/// the daemon running?" is the first question the bare io error buries.
fn connect_err(addr: &str) -> impl Fn(Sp2Error) -> CliError + '_ {
    move |e| {
        CliError::Sp2(Sp2Error::Protocol(format!(
            "connecting to sp2 serve at {addr}: {e} (is the daemon running?)"
        )))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{}", e.message());
            e.exit_code()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        parse_args_from(tokens.iter().map(|t| t.to_string()))
    }

    #[test]
    fn metrics_never_swallows_a_following_option() {
        // `--metrics --json` means "metrics table to stderr, dataset as
        // JSON" — the option after --metrics must not become the PATH.
        let args = parse(&["table2", "--metrics", "--json"]).expect("parses");
        assert_eq!(args.metrics, Some(None));
        assert!(args.json);

        let args = parse(&["table2", "--metrics", "m.json", "--json"]).expect("parses");
        assert_eq!(args.metrics, Some(Some("m.json".into())));
        assert!(args.json);

        // Trailing `--metrics` with nothing after it: table to stderr.
        let args = parse(&["table2", "--metrics"]).expect("parses");
        assert_eq!(args.metrics, Some(None));
    }

    #[test]
    fn defaults_are_stable() {
        let args = parse(&["timeline"]).expect("parses");
        assert_eq!(args.command, "timeline");
        assert_eq!(args.days, 60);
        assert_eq!(args.threads, 1);
        assert_eq!(args.cadence, 1);
        assert_eq!(args.engine, EngineKind::Batch);
        assert!(args.fast_forward);
        assert!(args.trace_out.is_none());
        assert!(args.metrics.is_none());
        assert!(!args.json);
    }

    #[test]
    fn engine_flag_selects_the_kind() {
        let args = parse(&["campaign", "--engine", "reference"]).expect("parses");
        assert_eq!(args.engine, EngineKind::Reference);
        assert_eq!(engine_config(&args).engine, EngineKind::Reference);

        let args = parse(&["campaign", "--engine", "batch"]).expect("parses");
        assert_eq!(args.engine, EngineKind::Batch);

        assert!(parse(&["campaign", "--engine", "turbo"]).is_err());
        assert!(parse(&["campaign", "--engine"]).is_err());
    }

    #[test]
    fn trace_out_requires_a_real_path() {
        let args = parse(&["campaign", "--trace-out", "trace.json"]).expect("parses");
        assert_eq!(args.trace_out, Some("trace.json".into()));
        assert!(parse(&["campaign", "--trace-out"]).is_err());
        assert!(
            parse(&["campaign", "--trace-out", "--json"]).is_err(),
            "an option is not a path"
        );
    }

    #[test]
    fn cadence_must_be_positive() {
        let args = parse(&["timeline", "--cadence", "4"]).expect("parses");
        assert_eq!(args.cadence, 4);
        assert!(parse(&["timeline", "--cadence", "0"]).is_err());
        assert!(parse(&["timeline", "--cadence", "x"]).is_err());
        assert!(parse(&["timeline", "--cadence"]).is_err());
    }

    #[test]
    fn flags_translate_to_engine_config() {
        // Defaults: only the pool size is pinned; every switch stays
        // None so process-wide settings are left alone.
        let e = engine_config(&parse(&["table2"]).expect("parses"));
        assert_eq!(e.threads, Some(1));
        assert!(e.fast_forward.is_none());
        assert!(e.metrics.is_none());
        assert!(e.recording_cadence.is_none());

        let e = engine_config(
            &parse(&[
                "timeline",
                "--cadence",
                "4",
                "--no-fast-forward",
                "--metrics",
            ])
            .expect("parses"),
        );
        assert_eq!(e.recording_cadence, Some(4));
        assert_eq!(e.fast_forward, Some(false));
        assert_eq!(e.metrics, Some(true));

        // `profile` implies metrics; `--trace-out` implies recording.
        let e = engine_config(&parse(&["profile"]).expect("parses"));
        assert_eq!(e.metrics, Some(true));
        let e = engine_config(&parse(&["table1", "--trace-out", "t.json"]).expect("parses"));
        assert_eq!(e.recording_cadence, Some(1));
    }

    #[test]
    fn positional_arg_and_unknown_options() {
        let args = parse(&["probe", "matmul"]).expect("parses");
        assert_eq!(args.arg.as_deref(), Some("matmul"));
        assert!(parse(&["table1", "--bogus"]).is_err());
        assert!(parse(&[]).is_err(), "no command prints usage");
    }

    #[test]
    fn global_flags_compose_before_and_after_the_command() {
        let before = parse(&[
            "--engine",
            "reference",
            "-j",
            "1",
            "--days",
            "30",
            "--trace-out",
            "t.json",
            "submit",
            "table2",
        ])
        .expect("parses");
        let after = parse(&[
            "submit",
            "table2",
            "--engine",
            "reference",
            "-j",
            "1",
            "--days",
            "30",
            "--trace-out",
            "t.json",
        ])
        .expect("parses");
        for args in [&before, &after] {
            assert_eq!(args.command, "submit");
            assert_eq!(args.arg.as_deref(), Some("table2"));
            assert_eq!(args.engine, EngineKind::Reference);
            assert_eq!(args.threads, 1);
            assert_eq!(args.days, 30);
            assert_eq!(args.trace_out.as_deref(), Some("t.json"));
        }
        // The derived engine configuration is identical too — the whole
        // point of position-independent globals.
        assert_eq!(engine_config(&before), engine_config(&after));
    }

    #[test]
    fn metrics_before_the_command_never_swallows_it() {
        // `sp2 --metrics table2` means "table2 with the metrics table to
        // stderr", never "metrics to a file named table2".
        let args = parse(&["--metrics", "table2"]).expect("parses");
        assert_eq!(args.command, "table2");
        assert_eq!(args.metrics, Some(None));
        // The attached form carries a path anywhere.
        let args = parse(&["--metrics=m.json", "table2"]).expect("parses");
        assert_eq!(args.command, "table2");
        assert_eq!(args.metrics, Some(Some("m.json".into())));
        let args = parse(&["table2", "--metrics=m.json"]).expect("parses");
        assert_eq!(args.metrics, Some(Some("m.json".into())));
        assert!(parse(&["--metrics=", "table2"]).is_err());
    }

    #[test]
    fn service_flags_parse() {
        let args = parse(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--store",
            "/tmp/s",
            "--campaigns",
            "4",
        ])
        .expect("parses");
        assert_eq!(args.addr, "127.0.0.1:0");
        assert_eq!(args.store, "/tmp/s");
        assert_eq!(args.campaigns, 4);
        assert!(parse(&["serve", "--campaigns", "0"]).is_err());
        assert!(parse(&["serve", "--addr"]).is_err());

        let args = parse(&[
            "submit",
            "--experiments",
            "table1,table2",
            "--seed",
            "7",
            "--no-wait",
        ])
        .expect("parses");
        assert_eq!(args.experiments.as_deref(), Some("table1,table2"));
        assert_eq!(args.seed, Some(7));
        assert!(args.no_wait);
        assert!(!args.local);

        let args = parse(&["jobs", "status", "3fa2"]).expect("parses");
        assert_eq!(args.arg.as_deref(), Some("status"));
        assert_eq!(args.arg2.as_deref(), Some("3fa2"));
        assert!(
            parse(&["jobs", "a", "b", "c"]).is_err(),
            "three positionals"
        );
    }

    #[test]
    fn archive_and_compare_flags_parse() {
        let args = parse(&["archive", "table2", "--days", "2", "--out", "a.sp2a"]).expect("parses");
        assert_eq!(args.command, "archive");
        assert_eq!(args.arg.as_deref(), Some("table2"));
        assert_eq!(args.out.as_deref(), Some("a.sp2a"));
        assert!(parse(&["archive", "table2", "--out"]).is_err());
        assert!(parse(&["archive", "table2", "--out", "--json"]).is_err());

        let args = parse(&[
            "compare",
            "a.sp2a",
            "b.ndjson",
            "--rel-tol",
            "1e-6",
            "--abs-tol",
            "0.5",
            "--json",
        ])
        .expect("parses");
        assert_eq!(args.command, "compare");
        assert_eq!(args.arg.as_deref(), Some("a.sp2a"));
        assert_eq!(args.arg2.as_deref(), Some("b.ndjson"));
        assert_eq!(args.rel_tol, Some(1e-6));
        assert_eq!(args.abs_tol, Some(0.5));
        assert!(args.json);
        assert!(parse(&["compare", "a", "b", "--rel-tol", "-1"]).is_err());
        assert!(parse(&["compare", "a", "b", "--abs-tol", "nope"]).is_err());

        let args = parse(&["table2", "--archive", "a.sp2a"]).expect("parses");
        assert_eq!(args.archive.as_deref(), Some("a.sp2a"));
        assert!(parse(&["table2", "--archive"]).is_err());
    }

    #[test]
    fn toplev_flags_parse() {
        let args = parse(&["toplev", "--plan-only", "--json"]).expect("parses");
        assert!(args.plan_only);
        assert!(args.json);
        assert!(args.passes.is_none());

        let args = parse(&["toplev", "--passes", "3"]).expect("parses");
        assert_eq!(args.passes, Some(3));
        assert!(!args.plan_only);
        assert!(parse(&["toplev", "--passes", "0"]).is_err());
        assert!(parse(&["toplev", "--passes"]).is_err());
        assert!(parse(&["toplev", "--passes", "x"]).is_err());

        let args = parse(&["jobs", "status", "3fa2", "--live"]).expect("parses");
        assert!(args.live);
        assert!(!parse(&["jobs", "status", "3fa2"]).expect("parses").live);
    }

    #[test]
    fn toplev_plan_honors_passes() {
        // The default plan is minimal: 28 signals, FXU carries 7 → 2.
        let plan = toplev_plan(&parse(&["toplev"]).unwrap()).expect("plans");
        assert_eq!(plan.n_passes(), 2);
        assert_eq!(plan.requested().len(), Signal::ALL.len());
        // Stretching is allowed; squeezing below the minimum is a usage
        // error, not a panic.
        let plan = toplev_plan(&parse(&["toplev", "--passes", "4"]).unwrap()).expect("plans");
        assert_eq!(plan.n_passes(), 4);
        assert!(matches!(
            toplev_plan(&parse(&["toplev", "--passes", "1"]).unwrap()),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn submission_translation_is_position_independent() {
        // The same logical request builds the same submission — and
        // therefore the same digest — however the flags are arranged.
        let a = submission_from_args(&parse(&["submit", "table2", "--days", "30"]).unwrap())
            .expect("builds");
        let b = submission_from_args(
            &parse(&["--days", "30", "submit", "--experiments", "table2"]).unwrap(),
        )
        .expect("builds");
        assert_eq!(a.digest_hex(), b.digest_hex());
        assert!(submission_from_args(&parse(&["submit"]).unwrap()).is_err());
    }
}
