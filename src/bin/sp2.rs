//! `sp2` — command-line front end for the SP2 HPM reproduction.
//!
//! ```text
//! sp2 table1                       # print Table 1
//! sp2 table2 --days 60             # Table 2 from a 60-day campaign
//! sp2 fig5 --json                  # Figure 5 dataset as JSON on stdout
//! sp2 calibration                  # §5 single-node anchors
//! sp2 iowait --days 30             # the §7 io-aware extension
//! sp2 probe matmul                 # run one kernel under the HPM
//! sp2 campaign --days 270          # everything, with artifacts
//! ```

use sp2_repro::core::experiments::{
    calibration, fig1, fig2, fig3, fig4, fig5, iowait, table1, table2, table3, table4,
};
use sp2_repro::core::{export, Sp2System};
use sp2_repro::hpm::{io_aware_selection, nas_selection, Hpm, Mode};
use sp2_repro::power2::{MachineConfig, Node};
use sp2_repro::rs2hpm::CounterSession;
use sp2_repro::workload::{
    blocked_matmul_kernel, cfd_kernel, naive_matmul_kernel, seqaccess_kernel, CfdKernelParams,
};
use std::process::ExitCode;

const USAGE: &str = "\
sp2 — reproduce Bergeron (SC 1998) on the simulated NAS SP2

USAGE:
    sp2 <COMMAND> [--days N] [--json]

COMMANDS:
    table1 | table2 | table3 | table4    regenerate a table
    fig1 | fig2 | fig3 | fig4 | fig5     regenerate a figure's dataset
    calibration                          §5 single-node anchors
    iowait                               §7 io-aware counter extension
    probe <matmul|naive|cfd|bt|seq>      run one kernel under the HPM
    campaign                             all of the above + JSON artifacts

OPTIONS:
    --days N    campaign length in days (default 60; the paper used 270)
    --json      print the dataset as JSON instead of the text rendering
";

struct Args {
    command: String,
    arg: Option<String>,
    days: u32,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        command,
        arg: None,
        days: 60,
        json: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--days" => {
                let v = argv.next().ok_or("--days needs a value")?;
                args.days = v.parse().map_err(|_| format!("bad --days value: {v}"))?;
                if args.days == 0 {
                    return Err("--days must be at least 1".into());
                }
            }
            "--json" => args.json = true,
            other if args.arg.is_none() && !other.starts_with('-') => {
                args.arg = Some(other.to_string());
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(args)
}

/// Renders or JSON-prints one experiment.
fn emit<T: serde::Serialize>(json: bool, data: &T, rendered: String) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(data).expect("experiment datasets serialize")
        );
    } else {
        print!("{rendered}");
    }
}

fn probe(kernel_name: &str) -> Result<(), String> {
    let machine = MachineConfig::nas_sp2();
    let kernel = match kernel_name {
        "matmul" => blocked_matmul_kernel(100_000),
        "naive" => naive_matmul_kernel(100_000),
        "cfd" => cfd_kernel("cfd-probe", &CfdKernelParams::default(), 60_000),
        "bt" => cfd_kernel("bt-probe", &CfdKernelParams::npb_bt(), 60_000),
        "seq" => seqaccess_kernel(300_000),
        other => return Err(format!("unknown kernel: {other} (try matmul|naive|cfd|bt|seq)")),
    };
    let mut node = Node::with_seed(machine, 7);
    let mut hpm = Hpm::new(nas_selection());
    let session = CounterSession::open(&hpm, 0.0);
    let stats = node.run_kernel(&kernel);
    hpm.absorb(&stats.events, Mode::User);
    let elapsed = machine.cycles_to_seconds(stats.cycles);
    let (_delta, report) = session.close(&hpm, elapsed);
    println!("kernel            {}", kernel.name);
    println!("cycles            {}", stats.cycles);
    println!("instructions      {}", stats.instructions);
    println!("ipc               {:.2}", stats.ipc());
    println!("Mflops            {:.1}  (peak {:.0})", report.mflops, machine.peak_mflops());
    println!("Mips              {:.1}", report.mips);
    println!("flops/memref      {:.2}", report.flops_per_memref());
    println!("FPU0/FPU1         {:.2}", report.fpu0_fpu1_ratio());
    println!("fma flop share    {:.0} %", report.fma_flop_fraction() * 100.0);
    println!("cache-miss ratio  {:.2} %", report.cache_miss_ratio() * 100.0);
    println!("TLB-miss ratio    {:.3} %", report.tlb_miss_ratio() * 100.0);
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let cmd = args.command.as_str();

    // Commands that need no campaign.
    match cmd {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return Ok(());
        }
        "table1" => {
            let t = table1::run();
            emit(args.json, &t, t.render());
            return Ok(());
        }
        "calibration" => {
            let c = calibration::run(&MachineConfig::nas_sp2());
            emit(args.json, &c, c.render());
            return Ok(());
        }
        "probe" => {
            let k = args.arg.as_deref().ok_or("probe needs a kernel name")?;
            return probe(k);
        }
        _ => {}
    }

    // The io-aware extension runs its own campaign under the §7 selection.
    if cmd == "iowait" {
        let config = sp2_repro::cluster::ClusterConfig {
            selection: io_aware_selection(),
            ..Default::default()
        };
        let clock = config.machine.clock_hz;
        let library =
            sp2_repro::workload::WorkloadLibrary::build(&config.machine, 1998);
        let mut sys = Sp2System::custom(
            config,
            library,
            sp2_repro::workload::JobMix::nas(),
            sp2_repro::workload::CampaignSpec {
                days: args.days,
                ..Default::default()
            },
        );
        let r = iowait::run(sys.campaign(), clock);
        emit(args.json, &r, r.render());
        return Ok(());
    }

    // Campaign-backed experiments.
    eprintln!("running a {}-day campaign…", args.days);
    let mut sys = Sp2System::nas_1996(args.days);
    let machine = sys.config().machine;
    let campaign = sys.campaign();
    match cmd {
        "table2" => {
            let t = table2::run(campaign);
            emit(args.json, &t, t.render());
        }
        "table3" => {
            let t = table3::run(campaign);
            emit(args.json, &t, t.render());
        }
        "table4" => {
            let t = table4::run(campaign, &machine);
            emit(args.json, &t, t.render());
        }
        "fig1" => {
            let f = fig1::run(campaign);
            emit(args.json, &f, f.render());
        }
        "fig2" => {
            let f = fig2::run(campaign);
            emit(args.json, &f, f.render());
        }
        "fig3" => {
            let f = fig3::run(campaign);
            emit(args.json, &f, f.render());
        }
        "fig4" => {
            let f = fig4::run(campaign);
            emit(args.json, &f, f.render());
        }
        "fig5" => {
            let f = fig5::run(campaign);
            emit(args.json, &f, f.render());
        }
        "campaign" => {
            let t1 = table1::run();
            let t2 = table2::run(campaign);
            let t3 = table3::run(campaign);
            let t4 = table4::run(campaign, &machine);
            let f1 = fig1::run(campaign);
            let f2 = fig2::run(campaign);
            let f3 = fig3::run(campaign);
            let f4 = fig4::run(campaign);
            let f5 = fig5::run(campaign);
            let cal = calibration::run(&machine);
            for rendered in [
                t1.render(),
                t2.render(),
                t3.render(),
                t4.render(),
                f1.render(),
                f2.render(),
                f3.render(),
                f4.render(),
                f5.render(),
                cal.render(),
            ] {
                println!("{rendered}");
            }
            let _ = export::write_json("table1", &t1);
            let _ = export::write_json("table2", &t2);
            let _ = export::write_json("table3", &t3);
            let _ = export::write_json("table4", &t4);
            let _ = export::write_json("fig1", &f1);
            let _ = export::write_json("fig2", &f2);
            let _ = export::write_json("fig3", &f3);
            let _ = export::write_json("fig4", &f4);
            let _ = export::write_json("fig5", &f5);
            let _ = export::write_json("calibration", &cal);
            eprintln!("artifacts written to {}", export::artifacts_dir().display());
        }
        other => return Err(format!("unknown command: {other}\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
