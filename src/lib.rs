//! Umbrella crate for the SP2 HPM reproduction workspace.
//!
//! Re-exports every subsystem crate under one roof so the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! can reach the whole system through a single dependency.

pub use sp2_cluster as cluster;
pub use sp2_core as core;
pub use sp2_hpm as hpm;
pub use sp2_isa as isa;
pub use sp2_pbs as pbs;
pub use sp2_power2 as power2;
pub use sp2_rs2hpm as rs2hpm;
pub use sp2_stats as stats;
pub use sp2_switch as switch;
pub use sp2_trace as trace;
pub use sp2_workload as workload;
